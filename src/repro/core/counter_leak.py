"""Activation-counter value leakage (paper Section 9.1).

When the attacker shares a DRAM row with the victim (the PRAC counter
granularity), it can leak *how many times* the victim activated that
row: the attacker hammers the shared row and counts its own accesses
until the back-off arrives -- the shared counter started at the
victim's secret count ``v``, so the back-off fires after about
``N_BO - v`` attacker activations, leaking ``log2(N_BO)`` bits at
once.  The paper measures a 7-bit counter value leaked in ~13.6 us on
average (~501 Kbps).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.scenario.spec import AgentSpec, ScenarioSpec, StopSpec
from repro.sim.config import DefenseKind, DefenseParams, SystemConfig
from repro.sim.engine import MS, SEC, US

SHARED_ROW = 0
VICTIM_ROW = 8
ATTACKER_ROW = 16
LEAK_BANK = (2, 1)


@dataclass(frozen=True)
class CounterLeakConfig:
    """Parameters of the counter-value leak attack."""

    nbo: int = 128
    seed: int = 5


@dataclass(frozen=True)
class LeakObservation:
    """Result of leaking one counter value."""

    secret: int
    estimate: int
    elapsed_ps: int

    @property
    def correct(self) -> bool:
        return self.secret == self.estimate

    @property
    def abs_error(self) -> int:
        return abs(self.secret - self.estimate)


class CounterLeakAttack:
    """Leak a victim's per-row activation count through PRAC back-offs."""

    def __init__(self, cfg: CounterLeakConfig | None = None) -> None:
        self.cfg = cfg if cfg is not None else CounterLeakConfig()
        self._offset: int | None = None

    def system_config(self) -> SystemConfig:
        return SystemConfig(
            defense=DefenseParams(kind=DefenseKind.PRAC, nbo=self.cfg.nbo,
                                  seed=self.cfg.seed),
            seed=self.cfg.seed)

    # ------------------------------------------------------------------
    def scenario(self, secret: int) -> ScenarioSpec:
        """The two-phase protocol as data.

        Stage 0 is the victim's alternating shared/private loop
        (2*secret samples put exactly ``secret`` ACTs on the shared
        row); stage 1 is the attacker hammering the already-aged
        counters until its first observed back-off (``stop_on``).  Both
        phases share one memory system, which is the whole point --
        the counter state survives between stages.
        """
        bg, bank = LEAK_BANK
        agents = []
        if secret:
            agents.append(AgentSpec("probe", name="victim", stage=0, params={
                "bank": (bg, bank), "rows": (SHARED_ROW, VICTIM_ROW),
                "max_samples": 2 * secret}))
        agents.append(AgentSpec(
            "probe", name="attacker", stage=1 if secret else 0, params={
                "bank": (bg, bank), "rows": (SHARED_ROW, ATTACKER_ROW),
                "max_samples": 6 * self.cfg.nbo,
                "stop_on": ("backoff",)}))
        return ScenarioSpec(
            name="counter-leak", system=self.system_config(),
            agents=tuple(agents), stop=StopSpec(5 * MS))

    def _run_phase(self, secret: int) -> tuple[int, int]:
        """Victim activates the shared row ``secret`` times, then the
        attacker hammers until the back-off.  Returns (attacker accesses
        to the shared row before the back-off, elapsed attacker time)."""
        built = self.scenario(secret).build()
        built.run()
        attacker = built.agent("attacker")
        bg, bank = LEAK_BANK
        shared = built.system.mapper.encode(bankgroup=bg, bank=bank,
                                            row=SHARED_ROW)
        is_backoff = built.classifier.is_backoff
        backoff_at = next((s.end_time for s in attacker.samples
                           if is_backoff(s.delta)), None)
        if backoff_at is None:
            raise RuntimeError("attacker never observed a back-off")
        shared_accesses = sum(1 for s in attacker.samples
                              if s.addr == shared)
        return shared_accesses, backoff_at - attacker.start_time

    def calibrate(self) -> int:
        """Measure the constant protocol offset with a known secret of 0."""
        if self._offset is None:
            accesses, _ = self._run_phase(secret=0)
            self._offset = self.cfg.nbo - accesses
        return self._offset

    def leak(self, secret: int) -> LeakObservation:
        """Leak one counter value in [0, N_BO)."""
        if not 0 <= secret < self.cfg.nbo:
            raise ValueError("secret must be within [0, N_BO)")
        offset = self.calibrate()
        accesses, elapsed = self._run_phase(secret)
        estimate = self.cfg.nbo - accesses - offset
        return LeakObservation(secret=secret, estimate=estimate,
                               elapsed_ps=elapsed)

    # ------------------------------------------------------------------
    def run(self, secrets: list[int]) -> dict:
        """Leak a batch of secrets; report accuracy and throughput."""
        observations = [self.leak(s) for s in secrets]
        bits = math.log2(self.cfg.nbo)
        mean_elapsed = (sum(o.elapsed_ps for o in observations)
                        / len(observations))
        return {
            "observations": observations,
            "accuracy": (sum(o.correct for o in observations)
                         / len(observations)),
            # The protocol has a +-1 ambiguity (whether the back-off
            # lands on a shared or private access of the attacker's
            # alternating loop), so the effective leak is log2(N_BO)
            # minus a fraction of a bit; report both accuracies.
            "accuracy_within_1": (sum(o.abs_error <= 1
                                      for o in observations)
                                  / len(observations)),
            "mean_abs_error": (sum(o.abs_error for o in observations)
                               / len(observations)),
            "bits_per_value": bits,
            "mean_elapsed_us": mean_elapsed / US,
            "throughput_kbps": bits / (mean_elapsed / SEC) / 1e3,
        }
