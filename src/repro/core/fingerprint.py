"""The PRAC-based website-fingerprinting side channel (paper Section 8).

The attacker runs the Listing-2 routine: it allocates N test rows,
accesses each row T < N_BO times (so the routine itself never triggers
a back-off) while timestamping continuously, and records the back-offs
*other* processes -- the victim's browser -- cause.  Because PRAC
back-offs stall the whole channel, the attacker's rows need not share
a bank with the browser's data.

A captured trace becomes a *fingerprint*: back-off timestamps over the
load's execution time.  Features follow the paper: per-execution-window
back-off counts (the Fig. 9 strips) plus, for consecutive back-off
pairs, (i) the time between the two signals, (ii) the gap from the
previous pair, and (iii) the pair's mean timestamp.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    import numpy as np

from repro.cache.hierarchy import CacheHierarchy, HierarchyConfig
from repro.dram.address import AddressMapper
from repro.scenario.spec import (
    AgentSpec,
    MeasurementSpec,
    ScenarioSpec,
    StopSpec,
)
from repro.sim.config import DefenseKind, DefenseParams, SystemConfig
from repro.sim.engine import MS, US
from repro.workloads.websites import WebsiteCatalog, WebsiteProfile

#: Probe placement: a bank the synthetic browser phases rarely use for
#: long (any bank works -- back-offs are channel-wide).
PROBE_BANK = (7, 3)
PROBE_FIRST_ROW = 1024


@dataclass(frozen=True)
class FingerprintConfig:
    """Parameters of the fingerprinting attack."""

    #: PRAC back-off threshold; the paper evaluates the side channel at
    #: N_RH = 64, i.e., a low threshold browsers trip naturally.
    nbo: int = 32
    duration_ps: int = 2 * MS  #: simulated load duration per trace
    #: Test rows of the Listing-2 routine.  Enough rows that revisits
    #: (plus refresh-induced re-activations) stay below N_BO over the
    #: capture duration -- the paper's "allocate each test row fully or
    #: reduce T" interference note.
    n_probe_rows: int = 64
    n_windows: int = 16  #: execution windows for the count features
    n_pairs: int = 6  #: consecutive back-off pairs in the feature vector
    seed: int = 3
    spec_noise: str | None = None  #: co-running SPEC class, e.g. 'H'
    #: Route the browser's accesses through a cache hierarchy (Section
    #: 10.3: the LLC filters accesses, the prefetcher adds traffic).
    hierarchy: "HierarchyConfig | None" = None


@dataclass
class FingerprintTrace:
    """One captured fingerprint."""

    website: str
    duration_ps: int
    backoff_times: list[int] = field(default_factory=list)
    n_samples: int = 0
    ground_truth_backoffs: int = 0

    def window_counts(self, n_windows: int) -> np.ndarray:
        """The Fig. 9 strip: back-offs per execution window."""
        import numpy as np  # deferred: keeps numpy off the CLI hot start

        counts = np.zeros(n_windows, dtype=float)
        width = self.duration_ps / n_windows
        for t in self.backoff_times:
            idx = min(int(t / width), n_windows - 1)
            counts[idx] += 1
        return counts

    def features(self, n_windows: int, n_pairs: int) -> np.ndarray:
        """Fixed-length feature vector (windows + pair features + stats)."""
        import numpy as np  # deferred: keeps numpy off the CLI hot start

        parts = [self.window_counts(n_windows)]
        times = np.asarray(self.backoff_times, dtype=float) / US
        pair_feats = np.full(3 * n_pairs, -1.0)
        for i in range(min(n_pairs, max(0, len(times) - 1))):
            first, second = times[i], times[i + 1]
            within = second - first
            prev_end = times[i] if i == 0 else times[i]
            gap_prev = first - (times[i - 1] if i > 0 else 0.0)
            pair_feats[3 * i] = within
            pair_feats[3 * i + 1] = gap_prev
            pair_feats[3 * i + 2] = (first + second) / 2.0
        parts.append(pair_feats)
        gaps = np.diff(times) if len(times) > 1 else np.array([0.0])
        parts.append(np.array([
            float(len(times)),
            float(times[0]) if len(times) else -1.0,
            float(times[-1]) if len(times) else -1.0,
            float(gaps.mean()),
            float(gaps.std()),
        ]))
        return np.concatenate(parts)


class WebsiteFingerprinter:
    """Capture fingerprints and build classification datasets."""

    def __init__(self, cfg: FingerprintConfig | None = None) -> None:
        self.cfg = cfg if cfg is not None else FingerprintConfig()

    # ------------------------------------------------------------------
    def system_config(self) -> SystemConfig:
        return SystemConfig(
            defense=DefenseParams(kind=DefenseKind.PRAC, nbo=self.cfg.nbo,
                                  seed=self.cfg.seed),
            seed=self.cfg.seed)

    def scenario(self, profile: WebsiteProfile,
                 trace_seed: int) -> ScenarioSpec:
        """One capture as data: probe + browser replay (+ SPEC noise).

        The browser's (cache-filtered) access trace is materialized
        into the spec, so a capture shipped to a worker process or the
        CLI is pure data.
        """
        cfg = self.cfg
        bg, bank = PROBE_BANK
        mapper = AddressMapper(self.system_config().org)
        browser_trace = profile.trace(cfg.duration_ps, trace_seed, mapper)
        if cfg.hierarchy is not None:
            browser_trace = self._filter_through_caches(browser_trace)
        agents = [
            # Listing 2: T accesses per row with T below the back-off
            # threshold so the probe never triggers preventive actions.
            AgentSpec("probe", name="fingerprint-probe", params={
                "bank": (bg, bank),
                "rows": [PROBE_FIRST_ROW + 8 * i
                         for i in range(cfg.n_probe_rows)],
                "accesses_per_addr": max(1, cfg.nbo - 1),
                "stop_time": cfg.duration_ps}),
            AgentSpec("trace", name="browser",
                      params={"trace": browser_trace}),
        ]
        if cfg.spec_noise is not None:
            agents.append(AgentSpec("app", name="spec-noise", params={
                "intensity_class": cfg.spec_noise,
                "seed": cfg.seed + trace_seed,
                "banks": tuple((g, b) for g in range(4) for b in range(2)),
                "n_requests": 10 ** 9, "stop_time": cfg.duration_ps}))
        return ScenarioSpec(
            name=f"fingerprint-{profile.name}", system=self.system_config(),
            agents=tuple(agents),
            stop=StopSpec(cfg.duration_ps + 500 * US),
            measurements=(MeasurementSpec(
                "backoff-times", params={"agent": "fingerprint-probe",
                                         "clip_ps": cfg.duration_ps}),))

    def capture(self, profile: WebsiteProfile,
                trace_seed: int) -> FingerprintTrace:
        """Simulate one browser load concurrently with the probe."""
        cfg = self.cfg
        result = self.scenario(profile, trace_seed).run()
        observed = result.data["backoff-times"]
        return FingerprintTrace(
            website=profile.name, duration_ps=cfg.duration_ps,
            backoff_times=observed["times"],
            n_samples=observed["n_samples"],
            ground_truth_backoffs=result.counters["backoffs"])

    def _filter_through_caches(self, trace: list[tuple[int, int]]
                               ) -> list[tuple[int, int]]:
        """Section 10.3: the browser's DRAM traffic after a larger
        cache hierarchy -- LLC hits are filtered out, Best-Offset
        prefetches are injected as extra DRAM fetches."""
        hierarchy = CacheHierarchy(self.cfg.hierarchy)
        filtered: list[tuple[int, int]] = []
        for offset, addr in trace:
            outcome = hierarchy.access(addr)
            for fetch in outcome.dram_addresses:
                filtered.append((offset, fetch))
                hierarchy.fill(fetch, prefetch=fetch != addr)
        return filtered

    # ------------------------------------------------------------------
    def collect_dataset(self, catalog: WebsiteCatalog,
                        traces_per_site: int
                        ) -> tuple[np.ndarray, np.ndarray, list[str]]:
        """Capture ``traces_per_site`` fingerprints per website.

        Returns (features X, integer labels y, label names).
        """
        import numpy as np  # deferred: keeps numpy off the CLI hot start

        cfg = self.cfg
        features = []
        labels = []
        for label, profile in enumerate(catalog):
            for t in range(traces_per_site):
                trace = self.capture(profile, trace_seed=t + 1)
                features.append(trace.features(cfg.n_windows, cfg.n_pairs))
                labels.append(label)
        X = np.vstack(features)
        y = np.asarray(labels, dtype=int)
        return X, y, catalog.names
