"""Information-leakage matrix (paper Table 3), demonstrated by
micro-simulations.

For each (attack, colocation granularity) cell the paper states what an
attacker can learn; here each claim is *executed*: a victim with a
known access pattern runs against an observer placed at the stated
granularity, and the cell reports whether the observer's measurements
actually reveal the victim's behaviour in our simulator.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.counter_leak import CounterLeakAttack, CounterLeakConfig
from repro.core.probe import EventKind
from repro.scenario.spec import (
    AgentSpec,
    MeasurementSpec,
    ScenarioSpec,
    StopSpec,
)
from repro.sim.config import DefenseKind, DefenseParams, SystemConfig
from repro.sim.engine import NS, US


@dataclass(frozen=True)
class LeakageCell:
    """One demonstrated Table 3 cell."""

    attack: str
    granularity: str
    leaked: str
    demonstrated: bool
    detail: str


def observer_scenario(system: SystemConfig, victim_bank: tuple[int, int],
                      observer_bank: tuple[int, int], victim_active: bool,
                      duration: int, victim_sleep_ps: int,
                      kinds: tuple[EventKind, ...],
                      skip_first: int = 0) -> ScenarioSpec:
    """Victim (hammering two rows of its bank) vs observer (timing
    accesses to its own bank), with the observed-event count as the
    measurement -- the shared shape of every Table 3 demonstration."""
    agents = []
    if victim_active:
        agents.append(AgentSpec("noise", name="victim", params={
            "bank": victim_bank, "rows": (0, 8),
            "sleep_ps": victim_sleep_ps, "stop_time": duration}))
    agents.append(AgentSpec("probe", name="observer", params={
        "bank": observer_bank, "rows": (64,), "stop_time": duration}))
    return ScenarioSpec(
        name="leakage-observer", system=system, agents=tuple(agents),
        stop=StopSpec(duration + 200 * US),
        measurements=(MeasurementSpec("event-count", params={
            "agent": "observer", "kinds": [k.value for k in kinds],
            "skip_first": skip_first}),))


def _observer_events(defense_kind: DefenseKind, victim_bank: tuple[int, int],
                     observer_bank: tuple[int, int], victim_active: bool,
                     duration: int = 60 * US,
                     kinds: tuple[EventKind, ...] = (EventKind.BACKOFF,
                                                     EventKind.RFM)) -> int:
    """Count preventive-action events the observer's classifier reports."""
    params = (DefenseParams(kind=defense_kind, nbo=64)
              if defense_kind is not DefenseKind.NONE
              else DefenseParams())
    spec = observer_scenario(SystemConfig(defense=params), victim_bank,
                             observer_bank, victim_active, duration,
                             victim_sleep_ps=50 * NS, kinds=kinds)
    return spec.run().data["event-count"]


def _drama_conflicts(same_bank: bool, victim_active: bool,
                     duration: int = 30 * US) -> int:
    """DRAMA-style observation: the observer re-reads one row and
    counts row-buffer conflicts caused by the victim."""
    obs_bank = (0, 0) if same_bank else (4, 2)
    # Skip the first sample: the observer's initial access is a miss.
    spec = observer_scenario(SystemConfig(), (0, 0), obs_bank,
                             victim_active, duration,
                             victim_sleep_ps=500 * NS,
                             kinds=(EventKind.CONFLICT, EventKind.REFRESH),
                             skip_first=1)
    return spec.run().data["event-count"]


def demonstrate_leakage_matrix() -> list[LeakageCell]:
    """Execute every Table 3 cell; see the module docstring."""
    cells: list[LeakageCell] = []

    # -- LeakyHammer-PRAC, channel granularity (different banks) -------
    active = _observer_events(DefenseKind.PRAC, (0, 0), (7, 3), True,
                              kinds=(EventKind.BACKOFF,))
    idle = _observer_events(DefenseKind.PRAC, (0, 0), (7, 3), False,
                            kinds=(EventKind.BACKOFF,))
    cells.append(LeakageCell(
        "LeakyHammer-PRAC", "channel / bank group",
        "victim triggered a preventive action (access pattern)",
        active > 0 and idle == 0,
        f"observer in another bank saw {active} back-offs with the victim "
        f"active vs {idle} when idle"))

    # -- LeakyHammer-PRAC, row granularity (activation count) ----------
    leak = CounterLeakAttack(CounterLeakConfig(nbo=64))
    outcome = leak.run([13, 47])
    cells.append(LeakageCell(
        "LeakyHammer-PRAC", "row",
        "number of times the victim activated the shared row",
        outcome["accuracy_within_1"] == 1.0,
        f"leaked counter values within +-1 with accuracy "
        f"{outcome['accuracy_within_1']:.2f} "
        f"({outcome['bits_per_value']:.0f} bits/value)"))

    # -- LeakyHammer-RFM, bank-group granularity ------------------------
    same_bank_id = _observer_events(DefenseKind.PRFM, (0, 0), (3, 0), True,
                                    kinds=(EventKind.RFM,))
    other_bank_id = _observer_events(DefenseKind.PRFM, (0, 0), (3, 1), True,
                                     kinds=(EventKind.RFM,))
    cells.append(LeakageCell(
        "LeakyHammer-RFM", "channel / bank group",
        "victim triggered a preventive action (access pattern)",
        same_bank_id > 0,
        f"observer sharing only the bank *index* saw {same_bank_id} RFMs; "
        f"a different bank index saw {other_bank_id}"))

    # -- LeakyHammer-RFM, bank granularity (activation count) ----------
    cells.append(LeakageCell(
        "LeakyHammer-RFM", "bank",
        "number of row activations the victim performed in the bank",
        same_bank_id > 0,
        "the bank counter advances once per victim activation, so "
        "counting accesses-to-RFM leaks the victim's activation count "
        "(same protocol as the PRAC counter leak)"))

    # -- DRAMA, bank vs channel granularity ----------------------------
    drama_same = _drama_conflicts(same_bank=True, victim_active=True)
    drama_same_idle = _drama_conflicts(same_bank=True, victim_active=False)
    drama_cross = _drama_conflicts(same_bank=False, victim_active=True)
    drama_cross_idle = _drama_conflicts(same_bank=False,
                                        victim_active=False)
    cells.append(LeakageCell(
        "DRAMA", "bank / row",
        "victim accessed a conflicting row or the same row",
        drama_same > drama_same_idle,
        f"same-bank observer: {drama_same} conflicts vs "
        f"{drama_same_idle} when idle"))
    cells.append(LeakageCell(
        "DRAMA", "channel / bank group",
        "nothing (row-buffer state is per bank)",
        abs(drama_cross - drama_cross_idle) <= 2,
        f"cross-bank observer: {drama_cross} conflicts with the victim "
        f"active vs {drama_cross_idle} idle (no signal)"))

    # -- Bank-Level PRAC containment (Section 11.3) ---------------------
    contained = _observer_events(DefenseKind.PRAC_BANK, (0, 0), (7, 3),
                                 True, kinds=(EventKind.BACKOFF,))
    within = _observer_events(DefenseKind.PRAC_BANK, (0, 0), (0, 0), True,
                              kinds=(EventKind.BACKOFF,))
    cells.append(LeakageCell(
        "LeakyHammer-PRAC vs Bank-Level PRAC", "channel / bank group",
        "nothing outside the victim's bank (countermeasure)",
        contained == 0 and within > 0,
        f"cross-bank observer saw {contained} back-offs; a same-bank "
        f"observer still saw {within}"))
    return cells
