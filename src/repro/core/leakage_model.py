"""Information-leakage matrix (paper Table 3), demonstrated by
micro-simulations.

For each (attack, colocation granularity) cell the paper states what an
attacker can learn; here each claim is *executed*: a victim with a
known access pattern runs against an observer placed at the stated
granularity, and the cell reports whether the observer's measurements
actually reveal the victim's behaviour in our simulator.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.counter_leak import CounterLeakAttack, CounterLeakConfig
from repro.core.probe import EventKind, LatencyClassifier
from repro.cpu.agent import run_agents
from repro.cpu.noise import NoiseAgent
from repro.cpu.probe import LatencyProbe
from repro.sim.config import DefenseKind, DefenseParams, SystemConfig
from repro.sim.engine import NS, US
from repro.system import MemorySystem


@dataclass(frozen=True)
class LeakageCell:
    """One demonstrated Table 3 cell."""

    attack: str
    granularity: str
    leaked: str
    demonstrated: bool
    detail: str


def _observer_events(defense_kind: DefenseKind, victim_bank: tuple[int, int],
                     observer_bank: tuple[int, int], victim_active: bool,
                     duration: int = 60 * US,
                     kinds: tuple[EventKind, ...] = (EventKind.BACKOFF,
                                                     EventKind.RFM)) -> int:
    """Run victim (hammering two rows of its bank) + observer (timing
    accesses to its own bank); count preventive-action events the
    observer's classifier reports."""
    params = (DefenseParams(kind=defense_kind, nbo=64)
              if defense_kind is not DefenseKind.NONE
              else DefenseParams())
    system = MemorySystem(SystemConfig(defense=params))
    classifier = LatencyClassifier(system.config)
    mapper = system.mapper
    agents = []
    if victim_active:
        victim_rows = [mapper.encode(bankgroup=victim_bank[0],
                                     bank=victim_bank[1], row=r)
                       for r in (0, 8)]
        agents.append(NoiseAgent(system, victim_rows, sleep_ps=50 * NS,
                                 name="victim", stop_time=duration))
    observer_addr = mapper.encode(bankgroup=observer_bank[0],
                                  bank=observer_bank[1], row=64)
    observer = LatencyProbe(system, [observer_addr], name="observer",
                            stop_time=duration)
    agents.append(observer)
    run_agents(system, agents, hard_limit=duration + 200 * US)
    return sum(1 for s in observer.samples
               if classifier.classify(s.delta) in kinds)


def _drama_conflicts(same_bank: bool, victim_active: bool,
                     duration: int = 30 * US) -> int:
    """DRAMA-style observation: the observer re-reads one row and
    counts row-buffer conflicts caused by the victim."""
    system = MemorySystem(SystemConfig())
    classifier = LatencyClassifier(system.config)
    mapper = system.mapper
    agents = []
    if victim_active:
        victim_bank = (0, 0)
        victim_rows = [mapper.encode(bankgroup=victim_bank[0],
                                     bank=victim_bank[1], row=r)
                       for r in (0, 8)]
        agents.append(NoiseAgent(system, victim_rows, sleep_ps=500 * NS,
                                 name="victim", stop_time=duration))
    obs_bank = (0, 0) if same_bank else (4, 2)
    observer_addr = mapper.encode(bankgroup=obs_bank[0], bank=obs_bank[1],
                                  row=64)
    observer = LatencyProbe(system, [observer_addr], name="observer",
                            stop_time=duration)
    agents.append(observer)
    run_agents(system, agents, hard_limit=duration + 200 * US)
    # Skip the first sample: the observer's initial access is a miss.
    return sum(1 for s in observer.samples[1:]
               if classifier.classify(s.delta) in (EventKind.CONFLICT,
                                                   EventKind.REFRESH))


def demonstrate_leakage_matrix() -> list[LeakageCell]:
    """Execute every Table 3 cell; see the module docstring."""
    cells: list[LeakageCell] = []

    # -- LeakyHammer-PRAC, channel granularity (different banks) -------
    active = _observer_events(DefenseKind.PRAC, (0, 0), (7, 3), True,
                              kinds=(EventKind.BACKOFF,))
    idle = _observer_events(DefenseKind.PRAC, (0, 0), (7, 3), False,
                            kinds=(EventKind.BACKOFF,))
    cells.append(LeakageCell(
        "LeakyHammer-PRAC", "channel / bank group",
        "victim triggered a preventive action (access pattern)",
        active > 0 and idle == 0,
        f"observer in another bank saw {active} back-offs with the victim "
        f"active vs {idle} when idle"))

    # -- LeakyHammer-PRAC, row granularity (activation count) ----------
    leak = CounterLeakAttack(CounterLeakConfig(nbo=64))
    outcome = leak.run([13, 47])
    cells.append(LeakageCell(
        "LeakyHammer-PRAC", "row",
        "number of times the victim activated the shared row",
        outcome["accuracy_within_1"] == 1.0,
        f"leaked counter values within +-1 with accuracy "
        f"{outcome['accuracy_within_1']:.2f} "
        f"({outcome['bits_per_value']:.0f} bits/value)"))

    # -- LeakyHammer-RFM, bank-group granularity ------------------------
    same_bank_id = _observer_events(DefenseKind.PRFM, (0, 0), (3, 0), True,
                                    kinds=(EventKind.RFM,))
    other_bank_id = _observer_events(DefenseKind.PRFM, (0, 0), (3, 1), True,
                                     kinds=(EventKind.RFM,))
    cells.append(LeakageCell(
        "LeakyHammer-RFM", "channel / bank group",
        "victim triggered a preventive action (access pattern)",
        same_bank_id > 0,
        f"observer sharing only the bank *index* saw {same_bank_id} RFMs; "
        f"a different bank index saw {other_bank_id}"))

    # -- LeakyHammer-RFM, bank granularity (activation count) ----------
    cells.append(LeakageCell(
        "LeakyHammer-RFM", "bank",
        "number of row activations the victim performed in the bank",
        same_bank_id > 0,
        "the bank counter advances once per victim activation, so "
        "counting accesses-to-RFM leaks the victim's activation count "
        "(same protocol as the PRAC counter leak)"))

    # -- DRAMA, bank vs channel granularity ----------------------------
    drama_same = _drama_conflicts(same_bank=True, victim_active=True)
    drama_same_idle = _drama_conflicts(same_bank=True, victim_active=False)
    drama_cross = _drama_conflicts(same_bank=False, victim_active=True)
    drama_cross_idle = _drama_conflicts(same_bank=False,
                                        victim_active=False)
    cells.append(LeakageCell(
        "DRAMA", "bank / row",
        "victim accessed a conflicting row or the same row",
        drama_same > drama_same_idle,
        f"same-bank observer: {drama_same} conflicts vs "
        f"{drama_same_idle} when idle"))
    cells.append(LeakageCell(
        "DRAMA", "channel / bank group",
        "nothing (row-buffer state is per bank)",
        abs(drama_cross - drama_cross_idle) <= 2,
        f"cross-bank observer: {drama_cross} conflicts with the victim "
        f"active vs {drama_cross_idle} idle (no signal)"))

    # -- Bank-Level PRAC containment (Section 11.3) ---------------------
    contained = _observer_events(DefenseKind.PRAC_BANK, (0, 0), (7, 3),
                                 True, kinds=(EventKind.BACKOFF,))
    within = _observer_events(DefenseKind.PRAC_BANK, (0, 0), (0, 0), True,
                              kinds=(EventKind.BACKOFF,))
    cells.append(LeakageCell(
        "LeakyHammer-PRAC vs Bank-Level PRAC", "channel / bank group",
        "nothing outside the victim's bank (countermeasure)",
        contained == 0 and within > 0,
        f"cross-bank observer saw {contained} back-offs; a same-bank "
        f"observer still saw {within}"))
    return cells
