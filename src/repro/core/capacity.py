"""Channel-capacity metrics (paper Section 5.2, Eq. 1).

    ChannelCapacity = RawBitRate x (1 - H(e))
    H(e) = -e log2(e) - (1-e) log2(1-e)

where ``e`` is the fraction of erroneous bits (or symbols, for the
multibit channels -- the paper applies the same binary-entropy form to
its ternary/quaternary error probabilities).
"""

from __future__ import annotations

import math
from typing import Sequence

from repro.sim.engine import SEC


def binary_entropy(e: float) -> float:
    """H(e) in bits; defined as 0 at e = 0 and e = 1."""
    if not 0.0 <= e <= 1.0:
        raise ValueError("error probability must be within [0, 1]")
    if e == 0.0 or e == 1.0:
        return 0.0
    return -e * math.log2(e) - (1.0 - e) * math.log2(1.0 - e)


def channel_capacity_bps(raw_bit_rate_bps: float, e: float) -> float:
    """Eq. 1: capacity of a binary-symmetric channel at raw rate & error."""
    if raw_bit_rate_bps < 0:
        raise ValueError("raw bit rate must be non-negative")
    return raw_bit_rate_bps * (1.0 - binary_entropy(e))


def error_probability(sent: Sequence[int], received: Sequence[int]) -> float:
    """Fraction of symbol positions that decoded incorrectly."""
    if len(sent) != len(received):
        raise ValueError("sent and received must have equal length")
    if not sent:
        raise ValueError("cannot compute error probability of empty message")
    errors = sum(1 for s, r in zip(sent, received) if s != r)
    return errors / len(sent)


def raw_bit_rate_bps(window_ps: int, bits_per_symbol: float) -> float:
    """Raw bit rate of a window-synchronized channel (one symbol/window)."""
    if window_ps <= 0:
        raise ValueError("window must be positive")
    return bits_per_symbol * SEC / window_ps
