"""Shared machinery for the window-synchronized covert channels.

Both covert channels (Sections 6 and 7) share one structure:

* the sender and receiver agree on an *epoch* and a *window duration*
  using the wall clock; one symbol is transmitted per window;
* the sender encodes a symbol by activating its private row (creating
  row-buffer conflicts with the receiver and driving the defense's
  activation counters) at a symbol-specific rate, or staying idle;
* the receiver continuously accesses its private row, timestamps every
  iteration, classifies samples, and decodes each window from the
  preventive actions it observed.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.core.capacity import (
    channel_capacity_bps,
    error_probability,
    raw_bit_rate_bps,
)
from repro.core.probe import EventKind, LatencyClassifier
from repro.cpu.agent import Agent
from repro.cpu.probe import LatencyProbe, LatencySample
from repro.system import MemorySystem


@dataclass
class WindowObservation:
    """Receiver-side record of one transmission window."""

    index: int
    sent: int
    decoded: int
    backoffs: int = 0
    rfms: int = 0
    refreshes: int = 0
    samples: int = 0
    #: receiver accesses performed before the first back-off (multibit).
    count_to_backoff: int | None = None


@dataclass
class TransmissionResult:
    """Outcome of one covert-channel transmission."""

    sent: list[int]
    decoded: list[int]
    window_ps: int
    bits_per_symbol: float
    windows: list[WindowObservation] = field(default_factory=list)
    ground_truth_backoffs: int = 0
    ground_truth_rfms: int = 0

    @property
    def raw_bit_rate_bps(self) -> float:
        return raw_bit_rate_bps(self.window_ps, self.bits_per_symbol)

    @property
    def error_probability(self) -> float:
        return error_probability(self.sent, self.decoded)

    @property
    def capacity_bps(self) -> float:
        return channel_capacity_bps(self.raw_bit_rate_bps,
                                    self.error_probability)

    @property
    def kbps(self) -> float:
        """Capacity in Kbps (the unit the paper reports)."""
        return self.capacity_bps / 1e3

    def summary(self) -> dict:
        return {
            "bits": len(self.sent) * self.bits_per_symbol,
            "raw_bit_rate_kbps": self.raw_bit_rate_bps / 1e3,
            "error_probability": self.error_probability,
            "capacity_kbps": self.capacity_bps / 1e3,
            "ground_truth_backoffs": self.ground_truth_backoffs,
            "ground_truth_rfms": self.ground_truth_rfms,
        }


def bits_per_symbol(levels: int) -> float:
    """Information per symbol of an L-ary channel."""
    if levels < 2:
        raise ValueError("need at least two symbol levels")
    return math.log2(levels)


class WindowedSender(Agent):
    """Transmits one symbol per window by modulating its access rate.

    ``gaps[symbol]`` is the extra sleep inserted after each completed
    access (``None`` = stay idle for the window).  On detecting a
    back-off in its own measurements the sender optionally halts until
    the window ends (the paper's senders do, to stop inflating
    activation counters once the bit is already delivered).
    """

    def __init__(self, system: MemorySystem, addr: int, symbols: list[int],
                 epoch: int, window_ps: int,
                 gaps: dict[int, int | None],
                 classifier: LatencyClassifier,
                 stop_on_backoff: bool = True,
                 name: str = "sender") -> None:
        super().__init__(system, name)
        for symbol in symbols:
            if symbol not in gaps:
                raise ValueError(f"symbol {symbol} has no configured gap")
        self.addr = addr
        self.symbols = symbols
        self.epoch = epoch
        self.window_ps = window_ps
        self.gaps = gaps
        self.classifier = classifier
        self.stop_on_backoff = stop_on_backoff
        self.overhead = system.config.loop_overhead
        self.accesses = 0
        self._halted_window = -1
        self._issue_time = 0
        # Stable bound references for the per-access hot loop; the
        # submit is _tick's tail call, so wake elision applies.
        self._tick_cb = self._tick
        self._complete_cb = self._complete
        self._classify = classifier.classify
        self._submit = system.controller.submit_tail
        #: Fast-forward coordinator: tick wake-ups are holder-parked so
        #: joint steady-state jumps can move them (and idle-window
        #: parks bound a co-running receiver's solo jumps exactly).
        self._ff = system.fast_forward

    # ------------------------------------------------------------------
    def _park(self, time_ps: int) -> None:
        ff = self._ff
        if ff is not None:
            ff.park(self, time_ps, self._tick_cb)
        else:
            self.sim.schedule_at(time_ps, self._tick_cb)

    def start(self) -> None:
        self._park(self.epoch)

    def _window_of(self, t: int) -> int:
        return (t - self.epoch) // self.window_ps

    def _tick(self) -> None:
        if self.done:
            return
        now = self.sim.now
        if now < self.epoch:
            self._park(self.epoch)
            return
        window = self._window_of(now)
        if window >= len(self.symbols):
            self._finish()
            return
        gap = self.gaps[self.symbols[window]]
        if gap is None or window == self._halted_window:
            next_start = self.epoch + (window + 1) * self.window_ps
            self._park(next_start)
            return
        self._issue_time = now
        self.accesses += 1
        self._submit(self.addr, self._complete_cb)

    def _complete(self, req) -> None:
        now = self.sim.now
        window = self._window_of(now)
        delta = now - self._issue_time + self.overhead
        if (self.stop_on_backoff
                and self._classify(delta) is EventKind.BACKOFF
                and 0 <= window < len(self.symbols)):
            self._halted_window = window
        gap = self.gaps.get(self.symbols[min(window, len(self.symbols) - 1)]
                            ) if window < len(self.symbols) else None
        sleep = self.overhead + (gap or 0)
        self._park(now + sleep)

    # ------------------------------------------------------------------
    # Joint steady-state fast-forward hooks (repro.sim.fastforward).
    # ------------------------------------------------------------------
    def ff_addrs(self) -> list[int]:
        return [self.addr]

    def ff_state(self, ff):
        holder = ff.holder_of(self)
        if holder is None:
            return None
        now = self.sim.now
        window = self._window_of(now) if now >= self.epoch else -1
        lin = (self._issue_time, self.accesses, holder.time, holder.seq)
        # The window index pins every detection window inside one
        # symbol (the symbol, its gap, and the halt decision all key on
        # it); crossing a boundary resets detection, and ff_cap keeps
        # synthesized windows inside the symbol too.
        inv = (window, self._halted_window, len(self.symbols))
        return lin, inv

    def ff_verify(self, now: int, period: int, d_lin, d_seq: int) -> bool:
        return (d_lin[0] == period and d_lin[1] > 0
                and d_lin[2] == period and d_lin[3] == d_seq)

    def ff_cap(self, now: int, period: int, d_lin) -> int | None:
        """Never synthesize across the current symbol window's end: the
        boundary access (new symbol, new gap, halt reset) runs live."""
        window = self._window_of(now)
        window_end = self.epoch + (window + 1) * self.window_ps
        return (window_end - 1 - now) // period

    def ff_production(self, d_lin) -> tuple[int, int]:
        return d_lin[1], 0

    def ff_jump(self, now: int, period: int, n: int, d_lin) -> int:
        self._issue_time += d_lin[0] * n
        self.accesses += d_lin[1] * n
        return 0


class WindowedReceiver(LatencyProbe):
    """Continuously measuring receiver with per-window event attribution.

    Each sample is attributed to the window containing the *midpoint*
    of the iteration (so a back-off straddling a boundary lands in the
    window where the blocking actually happened).  With
    ``sleep_on_backoff`` the receiver stops accessing until the next
    window after detecting a back-off, as the paper's PRAC receiver
    does, to avoid further inflating the activation counters.
    """

    def __init__(self, system: MemorySystem, addr: int, n_windows: int,
                 epoch: int, window_ps: int,
                 classifier: LatencyClassifier,
                 sleep_on_backoff: bool = False,
                 name: str = "receiver") -> None:
        self.n_windows = n_windows
        self.epoch = epoch
        self.window_ps = window_ps
        self.classifier = classifier
        self.sleep_on_backoff = sleep_on_backoff
        end = epoch + n_windows * window_ps
        super().__init__(system, [addr], name=name, start_time=epoch,
                         stop_time=end, on_sample=self._observe)
        #: per-window event lists: window -> list[EventKind]
        self.window_events: list[list[EventKind]] = [
            [] for _ in range(n_windows)]
        self.window_samples = [0] * n_windows
        #: receiver access count before the first back-off per window.
        self.count_to_backoff: list[int | None] = [None] * n_windows
        #: offset of the first back-off within each window (ps); the
        #: multibit decoder's symbol discriminator.
        self.time_to_backoff: list[int | None] = [None] * n_windows
        self._window_count = [0] * n_windows
        self._classify = classifier.classify
        # Observer replay contract (see LatencyProbe): _observe is pure
        # bookkeeping unless a BACKOFF-classified sample makes it sleep,
        # so a jump is safe exactly when the cycle's deltas contain no
        # BACKOFF (or the receiver never sleeps on one).
        self._ff_observer_guard = (self.on_sample, self._ff_guard)

    def _ff_guard(self, deltas: list[int]) -> bool:
        if not self.sleep_on_backoff:
            return True
        classify = self._classify
        return all(classify(d) is not EventKind.BACKOFF for d in deltas)

    def _ff_replay(self, new_samples) -> None:
        """Batched `_observe` over a synthesized sample run: classify
        each distinct delta once and update the per-window arrays
        in-place, preserving exact per-sample semantics."""
        if self.on_sample != self._observe:
            # A wrapper (e.g. a stop-on watcher) replaced the observer;
            # replay it sample-by-sample instead.
            super()._ff_replay(new_samples)
            return
        epoch = self.epoch
        window_ps = self.window_ps
        n_windows = self.n_windows
        events = self.window_events
        window_samples = self.window_samples
        counts = self._window_count
        count_to = self.count_to_backoff
        time_to = self.time_to_backoff
        classify = self._classify
        kind_of: dict[int, EventKind] = {}
        backoff = EventKind.BACKOFF
        for sample in new_samples:
            delta = sample.delta
            kind = kind_of.get(delta)
            if kind is None:
                kind = kind_of[delta] = classify(delta)
            mid = sample.end_time - delta // 2
            window = (mid - epoch) // window_ps
            if not 0 <= window < n_windows:
                continue
            events[window].append(kind)
            window_samples[window] += 1
            counts[window] += 1
            if kind is backoff and count_to[window] is None:
                count_to[window] = counts[window]
                time_to[window] = mid - (epoch + window * window_ps)

    def _observe(self, sample: LatencySample) -> None:
        delta = sample.delta
        mid = sample.end_time - delta // 2
        window = (mid - self.epoch) // self.window_ps
        if not 0 <= window < self.n_windows:
            return
        kind = self._classify(delta)
        self.window_events[window].append(kind)
        self.window_samples[window] += 1
        self._window_count[window] += 1
        if kind is EventKind.BACKOFF:
            if self.count_to_backoff[window] is None:
                self.count_to_backoff[window] = self._window_count[window]
                window_start = self.epoch + window * self.window_ps
                self.time_to_backoff[window] = mid - window_start
            if self.sleep_on_backoff:
                next_start = self.epoch + (window + 1) * self.window_ps
                self.sleep_until(next_start)

    # ------------------------------------------------------------------
    def events_of(self, window: int, kind: EventKind) -> int:
        return sum(1 for k in self.window_events[window] if k is kind)
