"""LeakyHammer: RowHammer-defense-based timing attacks (the paper's core).

The attack primitives:

* :mod:`repro.core.capacity` -- channel-capacity math (Eq. 1) and the
  noise-intensity model (Eq. 2);
* :mod:`repro.core.probe` -- latency classification turning raw
  measurement deltas into hit / conflict / refresh / RFM / back-off
  events (Section 6.2, Fig. 2);
* :mod:`repro.core.prac_channel` -- the PRAC-based covert channel,
  binary and multibit (Section 6);
* :mod:`repro.core.rfm_channel` -- the Periodic-RFM-based covert
  channel (Section 7);
* :mod:`repro.core.fingerprint` -- the website-fingerprinting side
  channel (Section 8);
* :mod:`repro.core.counter_leak` -- the activation-counter-value leak
  (Section 9.1);
* :mod:`repro.core.leakage_model` -- the Table 3 information-leakage
  matrix, demonstrated by micro-simulations.
"""

from repro.core.capacity import (
    binary_entropy,
    channel_capacity_bps,
    error_probability,
)
from repro.core.probe import EventKind, LatencyClassifier
from repro.core.covert import TransmissionResult
from repro.core.prac_channel import PracChannelConfig, PracCovertChannel
from repro.core.rfm_channel import RfmChannelConfig, RfmCovertChannel
from repro.core.fingerprint import FingerprintConfig, WebsiteFingerprinter
from repro.core.counter_leak import CounterLeakAttack, CounterLeakConfig

__all__ = [
    "binary_entropy",
    "channel_capacity_bps",
    "error_probability",
    "EventKind",
    "LatencyClassifier",
    "TransmissionResult",
    "PracChannelConfig",
    "PracCovertChannel",
    "RfmChannelConfig",
    "RfmCovertChannel",
    "FingerprintConfig",
    "WebsiteFingerprinter",
    "CounterLeakAttack",
    "CounterLeakConfig",
]
