"""Typed scenario outcome."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.scenario.spec import ScenarioError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.cpu.agent import Agent
    from repro.scenario.spec import ScenarioSpec
    from repro.system import MemorySystem


@dataclass
class ScenarioResult:
    """Outcome of one scenario run.

    The serializable core -- name, end time, stage start times, ground
    truth counters, and every measurement's output -- round-trips
    through :meth:`to_dict` (what the CLI persists and what
    ``map_scenarios`` returns from worker processes).  The live
    ``system`` and ``agents`` stay available for in-process callers
    (drivers that decode a transmission inspect the receiver directly)
    but are deliberately excluded from serialization.
    """

    name: str
    final_now: int
    stage_starts: list[int]
    counters: dict[str, int]
    data: dict[str, object] = field(default_factory=dict)
    # Live objects (in-process inspection only) -----------------------
    spec: "ScenarioSpec | None" = None
    system: "MemorySystem | None" = None
    agents: "list[Agent]" = field(default_factory=list)

    def agent(self, name: str) -> "Agent":
        """Look a live agent up by name (in-process results only).

        Raises :class:`ScenarioError` like ``BuiltScenario.agent`` --
        the error type for a typoed agent name must not depend on
        which object the caller happens to hold.
        """
        for agent in self.agents:
            if agent.name == name:
                return agent
        known = ", ".join(a.name for a in self.agents)
        raise ScenarioError(f"no agent named {name!r}; agents: {known}")

    def agents_named(self, prefix: str) -> "list[Agent]":
        """Every live agent whose name starts with ``prefix`` (how the
        expansion of a ``multi-probe`` spec is retrieved)."""
        return [a for a in self.agents if a.name.startswith(prefix)]

    def to_dict(self) -> dict:
        """JSON-safe core of the result (no live objects)."""
        return {
            "name": self.name,
            "final_now": self.final_now,
            "stage_starts": list(self.stage_starts),
            "counters": dict(self.counters),
            "data": self.data,
        }
