"""Measurement collectors: named, parameterized result extractors.

A :class:`~repro.scenario.spec.MeasurementSpec` names a collector kind
plus its params; after a scenario runs, each collector condenses live
agents/statistics into JSON-safe data under
``ScenarioResult.data[label]``.  Collectors are the serializable half
of "measurement as data": a spec shipped to a worker process comes
back as plain dicts, no live simulator objects required.

Registering a collector is one decorated function::

    @measurement("my-metric", doc="one-line description")
    def _collect_my_metric(built, **params):
        return {...}
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable

from repro.core.probe import EventKind
from repro.scenario.spec import MeasurementSpec, ScenarioError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.scenario.build import BuiltScenario


@dataclass(frozen=True)
class MeasurementKind:
    """One registered collector."""

    kind: str
    collector: Callable[..., object]
    doc: str


_MEASUREMENTS: dict[str, MeasurementKind] = {}


def measurement(kind: str, *, doc: str) -> Callable:
    """Register a collector under ``kind``."""

    def decorate(fn: Callable) -> Callable:
        if kind in _MEASUREMENTS:
            raise ScenarioError(
                f"measurement kind {kind!r} already registered")
        _MEASUREMENTS[kind] = MeasurementKind(kind=kind, collector=fn,
                                              doc=doc)
        return fn

    return decorate


def measurement_kinds() -> dict[str, MeasurementKind]:
    return dict(_MEASUREMENTS)


def collect_measurement(built: "BuiltScenario",
                        spec: MeasurementSpec) -> object:
    try:
        entry = _MEASUREMENTS[spec.kind]
    except KeyError:
        known = ", ".join(sorted(_MEASUREMENTS))
        raise ScenarioError(
            f"unknown measurement kind {spec.kind!r}; known kinds: "
            f"{known}") from None
    try:
        return entry.collector(built, **dict(spec.params))
    except TypeError as exc:
        raise ScenarioError(
            f"measurement kind {spec.kind!r}: {exc}") from None


def _probe_of(built: "BuiltScenario", agent: str):
    probe = built.agent(agent)
    if not hasattr(probe, "samples"):
        raise ScenarioError(
            f"agent {agent!r} records no samples (kind mismatch)")
    return probe


# ----------------------------------------------------------------------
# Collectors
# ----------------------------------------------------------------------
@measurement("counters", doc="ground-truth memory-system counters")
def _collect_counters(built: "BuiltScenario"):
    stats = built.system.stats
    out = dict(stats.act_rate_summary)
    out["precharges"] = stats.precharges
    out["para_refreshes"] = stats.para_refreshes
    out["n_blocks"] = len(stats.blocks)
    return out


@measurement("latency-classes",
             doc="per-event-kind count/mean/max over a probe's samples")
def _collect_latency_classes(built: "BuiltScenario", *, agent: str):
    probe = _probe_of(built, agent)
    classify = built.classifier.classify
    out: dict[str, dict] = {}
    for index, sample in enumerate(probe.samples):
        kind = classify(sample.delta).value
        entry = out.get(kind)
        if entry is None:
            entry = out[kind] = {"count": 0, "sum_ps": 0, "max_ps": 0,
                                 "first_index": index}
        entry["count"] += 1
        entry["sum_ps"] += sample.delta
        if sample.delta > entry["max_ps"]:
            entry["max_ps"] = sample.delta
    for entry in out.values():
        entry["mean_ps"] = entry.pop("sum_ps") / entry["count"]
    return out


@measurement("samples",
             doc="sample count + checksums (optionally raw pairs)")
def _collect_samples(built: "BuiltScenario", *, agent: str, raw=False):
    probe = _probe_of(built, agent)
    samples = probe.samples
    out = {
        "n_samples": len(samples),
        "delta_checksum": sum(s.delta for s in samples) % (1 << 31),
        "end_checksum": sum(s.end_time for s in samples) % (1 << 31),
    }
    if raw:
        out["pairs"] = [[s.end_time, s.delta] for s in samples]
    return out


@measurement("backoff-times",
             doc="classified back-off midpoints of a probe (fingerprint)")
def _collect_backoff_times(built: "BuiltScenario", *, agent: str,
                           clip_ps=None):
    probe = _probe_of(built, agent)
    classify = built.classifier.classify
    times = []
    for s in probe.samples:
        if classify(s.delta) is EventKind.BACKOFF:
            mid = max(s.end_time - s.delta // 2, 0)
            if clip_ps is not None:
                mid = min(mid, int(clip_ps))
            times.append(mid)
    return {"times": times, "n_samples": len(probe.samples)}


@measurement("elapsed", doc="per-agent start-to-finish wall time")
def _collect_elapsed(built: "BuiltScenario", *, agents=None):
    names = (list(agents) if agents is not None
             else [a.name for a in built.agents])
    out = {}
    for name in names:
        agent = built.agent(name)
        if agent.finish_time is None:
            raise ScenarioError(f"agent {name!r} never finished")
        start = getattr(agent, "start_time", None)
        if start is None:
            raise ScenarioError(
                f"agent {name!r} records no start_time; 'elapsed' "
                "applies to probe/noise/app/trace agents")
        out[name] = agent.finish_time - start
    return out


@measurement("event-count",
             doc="number of a probe's samples classified as given kinds")
def _collect_event_count(built: "BuiltScenario", *, agent: str, kinds,
                         skip_first=0):
    probe = _probe_of(built, agent)
    classify = built.classifier.classify
    wanted = tuple(EventKind(k) for k in kinds)
    return sum(1 for s in probe.samples[int(skip_first):]
               if classify(s.delta) in wanted)
