"""Property-based scenario generation: seeded random valid specs.

:func:`random_spec` turns one integer seed into a bounded, always-valid
:class:`~repro.scenario.spec.ScenarioSpec` -- a random defense
configuration, refresh policy, and a small cast drawn from the
agent-kind registry (probes with random placement/cadence, activation
noise, read/write-mix noise, synthetic apps), plus the measurements
that pin the run's observable physics (counters, raw per-sample pairs,
latency classes).

The generator is the randomized half of the differential equivalence
harness (``python -m repro diffcheck``): every spec runs once with
steady-state fast-forward disabled and once enabled, and the results
must be bit-identical.  It is deliberately *adversarial* toward the
fast-forward engine -- multi-agent mixes, jittered probes, stop-on
watchers and tiny thresholds all force the engine to decline or bound
jumps, which is exactly the behaviour the harness must prove safe.

``tests/equivalence/strategies.py`` re-exports these generators for
test-suite use.
"""

from __future__ import annotations

import random

from repro.scenario.spec import (
    AgentSpec,
    MeasurementSpec,
    ScenarioSpec,
    StopSpec,
)
from repro.sim.config import (
    DefenseKind,
    DefenseParams,
    RefreshPolicy,
    SystemConfig,
)
from repro.sim.engine import MS, NS, US

#: Defense kinds the fuzzer draws from (all registered kinds).
FUZZ_DEFENSES = (
    DefenseKind.NONE,
    DefenseKind.PRAC,
    DefenseKind.PRFM,
    DefenseKind.FRRFM,
    DefenseKind.PRAC_RIAC,
    DefenseKind.PRAC_BANK,
    DefenseKind.PARA,
)


def random_system(rng: random.Random) -> SystemConfig:
    """A random, always-valid :class:`SystemConfig`."""
    kind = rng.choice(FUZZ_DEFENSES)
    defense = DefenseParams(
        kind=kind,
        nbo=rng.choice((16, 32, 64, 128)),
        n_rfms=rng.choice((1, 2, 4)),
        # Keep the FR-RFM period above the RFM latency (trfm * tRC must
        # exceed tRFM_AB = 350 ns; tRC = 48 ns, so trfm >= 8).
        trfm=rng.choice((8, 16, 40)),
        para_probability=rng.choice((0.001, 0.01)),
        seed=rng.randrange(1 << 16),
    )
    return SystemConfig(
        defense=defense,
        refresh_policy=rng.choice((RefreshPolicy.NONE,
                                   RefreshPolicy.EVERY_TREFI,
                                   RefreshPolicy.POSTPONE_PAIR)),
        column_cap=rng.choice((4, 16)),
        seed=rng.randrange(1 << 16),
    )


def _random_probe(rng: random.Random, index: int) -> AgentSpec:
    n_rows = rng.choice((1, 1, 2, 2, 3))
    first = rng.randrange(0, 64)
    stride = rng.choice((1, 8))
    params = {
        "bank": (rng.randrange(4), rng.randrange(4)),
        "rows": [first + i * stride for i in range(n_rows)],
        "max_samples": rng.randrange(60, 400),
        "accesses_per_addr": rng.choice((1, 1, 1, 2, 3)),
    }
    if rng.random() < 0.25:
        params["jitter_ps"] = rng.choice((0, 35 * NS))
    if rng.random() < 0.2:
        params["stop_on"] = ["backoff"]
    if rng.random() < 0.3:
        params["start_time"] = rng.randrange(0, 50 * US)
    return AgentSpec("probe", name=f"probe-{index}", params=params)


def _random_noise(rng: random.Random, index: int) -> AgentSpec:
    kind = rng.choice(("noise", "mixed-noise"))
    params = {
        "bank": (rng.randrange(4), rng.randrange(4)),
        "rows": [rng.randrange(64, 96), rng.randrange(96, 128)],
        "intensity": rng.choice((1.0, 30.0, 80.0)),
        "stop_time": rng.randrange(1 * MS, 3 * MS),
        "burst": rng.choice((1, 2, 4)),
    }
    if kind == "mixed-noise":
        params["write_ratio"] = rng.choice((0.0, 0.3, 0.7))
    return AgentSpec(kind, name=f"{kind}-{index}", params=params)


def _random_app(rng: random.Random, index: int) -> AgentSpec:
    return AgentSpec("app", name=f"app-{index}", params={
        "intensity_class": rng.choice(("L", "M", "H")),
        "seed": rng.randrange(1 << 12),
        "banks": [[rng.randrange(4), rng.randrange(4)]],
        "n_requests": rng.randrange(150, 600),
    })


def random_spec(seed: int, *, max_agents: int = 3) -> ScenarioSpec:
    """One seeded random valid scenario spec (deterministic per seed).

    Always contains at least one probe (the observable the equivalence
    check pins sample-by-sample); additional agents are drawn from the
    noise/app kinds.  All scales are bounded so a diffcheck sweep of a
    few dozen specs stays interactive.
    """
    rng = random.Random(seed)
    system = random_system(rng)
    agents = [_random_probe(rng, 0)]
    extra_kinds = (_random_probe, _random_noise, _random_app)
    for i in range(rng.randrange(0, max_agents)):
        agents.append(rng.choice(extra_kinds)(rng, i + 1))

    measurements = [MeasurementSpec("counters")]
    for agent in agents:
        if agent.kind == "probe":
            measurements.append(MeasurementSpec(
                "samples", label=f"samples-{agent.name}",
                params={"agent": agent.name, "raw": True}))
            measurements.append(MeasurementSpec(
                "latency-classes", label=f"classes-{agent.name}",
                params={"agent": agent.name}))

    return ScenarioSpec(
        name=f"fuzz-{seed}",
        system=system,
        agents=tuple(agents),
        # Generous hard limit: every fuzz agent is bounded by
        # max_samples / stop_time / n_requests, so the limit only
        # guards against generator bugs.
        stop=StopSpec(hard_limit_ps=400 * MS),
        measurements=tuple(measurements),
    )


def random_specs(n: int, base_seed: int = 0x5EED) -> list[ScenarioSpec]:
    """``n`` seeded specs with distinct, reproducible seeds."""
    return [random_spec(base_seed + i) for i in range(n)]


# ----------------------------------------------------------------------
# Multi-agent periodic casts (the joint fast-forward fuzz profile)
# ----------------------------------------------------------------------
def _periodic_probe(rng: random.Random, index: int,
                    bank: tuple[int, int]) -> AgentSpec:
    """A jitter-free bounded probe: the periodic-friendly variant the
    joint steady-state detector can actually engage with."""
    first = rng.randrange(0, 48)
    n_rows = rng.choice((1, 2))
    return AgentSpec("probe", name=f"probe-{index}", params={
        "bank": bank,
        "rows": [first + i * 8 for i in range(n_rows)],
        "max_samples": rng.randrange(60, 250),
        "accesses_per_addr": rng.choice((1, 1, 2)),
    })


def random_multiagent_spec(seed: int) -> ScenarioSpec:
    """One seeded multi-agent *periodic* scenario spec (deterministic
    per seed): two or three agents whose superposition the joint
    steady-state fast-forward path must either jump bit-identically or
    soundly decline.

    Where :func:`random_spec` is adversarial (jitter, stop-on
    watchers), every cast here is periodic-friendly -- co-running
    probes, a probe against an activation-noise generator, or a
    window-synchronized covert sender + receiver pair -- so these
    specs drive the joint detector's *engagement* paths, not just its
    refusals.
    """
    rng = random.Random(seed)
    system = random_system(rng)
    cast = rng.choice(("probes", "probes", "three", "probe+noise",
                       "covert", "covert"))
    shared_bank = (rng.randrange(4), rng.randrange(4))
    other_bank = (rng.randrange(4), rng.randrange(4))

    if cast in ("probes", "three"):
        # Same-bank probes interleave in the controller; split-bank
        # probes superpose as commensurate independent loops.  Both
        # shapes must hold bit-identically under joint jumps.
        banks = [shared_bank,
                 shared_bank if rng.random() < 0.5 else other_bank]
        if cast == "three":
            banks.append(other_bank)
        agents = [_periodic_probe(rng, i, bank)
                  for i, bank in enumerate(banks)]
    elif cast == "probe+noise":
        agents = [
            _periodic_probe(rng, 0, shared_bank),
            AgentSpec("noise", name="noise-1", params={
                "bank": shared_bank if rng.random() < 0.5 else other_bank,
                "rows": [rng.randrange(64, 96), rng.randrange(96, 128)],
                "intensity": rng.choice((1.0, 30.0, 80.0)),
                "stop_time": rng.randrange(400 * US, 1 * MS),
                "burst": rng.choice((1, 2)),
            }),
        ]
    else:  # covert: window-synchronized sender + receiver (+ noise)
        n_windows = rng.randrange(3, 6)
        window_ps = rng.choice((10 * US, 25 * US))
        epoch = 2 * US
        symbols = [rng.randrange(2) for _ in range(n_windows)]
        gaps = {0: None, 1: rng.choice((0, 100 * NS))}
        agents = [
            AgentSpec("sender", name="sender", params={
                "bank": shared_bank, "rows": (0,),
                "symbols": symbols, "epoch": epoch,
                "window_ps": window_ps, "gaps": gaps,
                "stop_on_backoff": rng.random() < 0.5}),
            AgentSpec("receiver", name="receiver", params={
                "bank": shared_bank, "rows": (8,),
                "n_windows": n_windows, "epoch": epoch,
                "window_ps": window_ps,
                "sleep_on_backoff": rng.random() < 0.5}),
        ]
        if rng.random() < 0.3:
            agents.append(AgentSpec("noise", name="noise-1", params={
                "bank": shared_bank, "rows": (16, 24),
                "intensity": rng.choice((1.0, 30.0)),
                "stop_time": epoch + n_windows * window_ps}))

    measurements = [MeasurementSpec("counters")]
    for agent in agents:
        if agent.kind in ("probe", "receiver"):
            measurements.append(MeasurementSpec(
                "samples", label=f"samples-{agent.name}",
                params={"agent": agent.name, "raw": True}))
            measurements.append(MeasurementSpec(
                "latency-classes", label=f"classes-{agent.name}",
                params={"agent": agent.name}))

    return ScenarioSpec(
        name=f"fuzz-multi-{seed}",
        system=system,
        agents=tuple(agents),
        stop=StopSpec(hard_limit_ps=400 * MS),
        measurements=tuple(measurements),
    )
