"""The agent-kind registry: spec kinds -> :mod:`repro.cpu` classes.

Each registered kind is a builder turning an :class:`AgentSpec`'s
params dict into one or more started-to-be agents on the scenario's
memory system.  Builders receive a :class:`BuildContext` (system,
shared latency classifier, address helpers, and the stage's current
simulation time) and must be deterministic: the same spec always
produces the same agents with the same constructor arguments, which is
what keeps scenario-built experiments bit-identical to the imperative
code they replaced.

Adding an agent kind is one decorated function::

    @agent_kind("my-agent", doc="one-line description")
    def _build_my_agent(ctx, **params):
        return MyAgent(ctx.system, ...)

Params arrive JSON-normalized (tuples as lists, dict keys as strings);
builders own the conversion back to whatever the agent class wants.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.core.probe import LatencyClassifier
from repro.cpu.agent import Agent
from repro.scenario.spec import AgentSpec, ScenarioError
from repro.system import MemorySystem


@dataclass(frozen=True)
class AgentKind:
    """One registered agent kind."""

    kind: str
    builder: Callable[..., "Agent | list[Agent]"]
    doc: str


_KINDS: dict[str, AgentKind] = {}


def agent_kind(kind: str, *, doc: str) -> Callable:
    """Register a builder under ``kind`` (duplicate kinds are an error)."""

    def decorate(fn: Callable) -> Callable:
        if kind in _KINDS:
            raise ScenarioError(f"agent kind {kind!r} already registered")
        _KINDS[kind] = AgentKind(kind=kind, builder=fn, doc=doc)
        return fn

    return decorate


def agent_kinds() -> dict[str, AgentKind]:
    """Every registered kind, keyed by name."""
    return dict(_KINDS)


def get_kind(kind: str) -> AgentKind:
    try:
        return _KINDS[kind]
    except KeyError:
        known = ", ".join(sorted(_KINDS))
        raise ScenarioError(
            f"unknown agent kind {kind!r}; known kinds: {known}") from None


@dataclass
class BuildContext:
    """What an agent builder sees."""

    system: MemorySystem
    classifier: LatencyClassifier
    #: simulation time when this agent's stage is being assembled (0 for
    #: stage 0; later stages are built after the previous stage ran).
    now: int

    # -- param helpers -------------------------------------------------
    def resolve_addrs(self, params: dict, *, single: bool = False):
        """Turn a spec's placement params into byte addresses.

        Accepts either pre-encoded ``addrs``/``addr`` integers or the
        declarative ``bank: [bankgroup, bank]`` + ``rows: [...]`` form
        (optionally with ``rank``); both encode identically because
        address mapping is a pure function of the DRAM organization.
        """
        mapper = self.system.mapper
        unknown = set(params) - {"addr", "addrs", "bank", "rows", "rank"}
        if unknown:
            raise ScenarioError(
                f"unknown agent param(s) {sorted(unknown)}; placement "
                "takes 'addr', 'addrs', or 'bank'+'rows' (+'rank')")
        if "addr" in params:
            addrs = [int(params["addr"])]
        elif "addrs" in params:
            addrs = [int(a) for a in params["addrs"]]
        elif "rows" in params:
            bg, bank = params.get("bank", (0, 0))
            rank = int(params.get("rank", 0))
            addrs = [mapper.encode(rank=rank, bankgroup=int(bg),
                                   bank=int(bank), row=int(r))
                     for r in params["rows"]]
        else:
            raise ScenarioError(
                "agent placement needs 'addr', 'addrs', or 'bank'+'rows'")
        if single:
            if len(addrs) != 1:
                raise ScenarioError("this agent kind takes exactly one "
                                    "address")
            return addrs[0]
        return addrs

    def start_time(self, value) -> int:
        """Explicit ``start_time`` or the stage's current time."""
        return self.now if value is None else int(value)


def build_agents(ctx: BuildContext, spec: AgentSpec) -> list[Agent]:
    """Resolve one :class:`AgentSpec` into its (started-later) agents."""
    entry = get_kind(spec.kind)
    try:
        built = entry.builder(ctx, name=spec.name, **dict(spec.params))
    except TypeError as exc:
        raise ScenarioError(
            f"agent kind {spec.kind!r}: {exc}") from None
    return list(built) if isinstance(built, (list, tuple)) else [built]


# ----------------------------------------------------------------------
# Param plumbing shared by several kinds
# ----------------------------------------------------------------------
def _int_or_none(value):
    return None if value is None else int(value)


def _event_kinds(names):
    from repro.core.probe import EventKind

    return tuple(EventKind(n) for n in names)


def _with_stop_on(ctx: BuildContext, probe, stop_on, on_sample):
    """Install a first-matching-event stop watcher on a probe.

    The watcher runs *after* any user collector so a stopping sample is
    still recorded and observed -- the behaviour imperative attack
    loops implemented with ad-hoc ``on_sample`` closures.
    """
    if not stop_on:
        return probe
    kinds = _event_kinds(stop_on)
    classify = ctx.classifier.classify
    inner = on_sample
    inner_guard = probe._ff_observer_guard

    def watch(sample) -> None:
        if inner is not None:
            inner(sample)
        if classify(sample.delta) in kinds:
            probe.stop()

    def ff_guard(deltas) -> bool:
        # Replaying the watcher over synthesized samples is safe only
        # when no delta in the cycle classifies to a stopping kind (the
        # stop must run live) and the wrapped observer's own guard --
        # if there is one -- also approves.
        if any(classify(d) in kinds for d in deltas):
            return False
        if inner is None:
            return True
        return (inner_guard is not None and inner_guard[0] is inner
                and inner_guard[1](deltas))

    probe.on_sample = watch
    probe._ff_observer_guard = (watch, ff_guard)
    return probe


# ----------------------------------------------------------------------
# The paper's cast
# ----------------------------------------------------------------------
@agent_kind("probe", doc="closed-loop latency measurement loop (Listing 1)")
def _build_probe(ctx: BuildContext, name=None, *, max_samples=None,
                 stop_time=None, overhead=None, accesses_per_addr=1,
                 jitter_ps=0, stop_on=(), start_time=None, **placement):
    from repro.cpu.probe import LatencyProbe

    kwargs = {} if name is None else {"name": name}
    probe = LatencyProbe(
        ctx.system, ctx.resolve_addrs(placement),
        start_time=ctx.start_time(start_time),
        max_samples=_int_or_none(max_samples),
        stop_time=_int_or_none(stop_time),
        overhead=_int_or_none(overhead),
        accesses_per_addr=int(accesses_per_addr),
        jitter_ps=int(jitter_ps), **kwargs)
    return _with_stop_on(ctx, probe, stop_on, None)


@agent_kind("noise", doc="alternating-row activation generator (Eq. 2)")
def _build_noise(ctx: BuildContext, name=None, *, sleep_ps=None,
                 intensity=None, stop_time=None, burst=2, start_time=None,
                 **placement):
    from repro.cpu.noise import NoiseAgent, sleep_for_noise_intensity

    if (sleep_ps is None) == (intensity is None):
        raise ScenarioError(
            "noise agent takes exactly one of 'sleep_ps' or 'intensity'")
    if intensity is not None:
        sleep_ps = sleep_for_noise_intensity(float(intensity))
    kwargs = {} if name is None else {"name": name}
    return NoiseAgent(ctx.system, ctx.resolve_addrs(placement),
                      int(sleep_ps),
                      start_time=ctx.start_time(start_time),
                      stop_time=_int_or_none(stop_time), burst=int(burst),
                      **kwargs)


@agent_kind("sender", doc="window-synchronized covert-channel sender")
def _build_sender(ctx: BuildContext, name=None, *, symbols, epoch,
                  window_ps, gaps, stop_on_backoff=True, **placement):
    from repro.core.covert import WindowedSender

    kwargs = {} if name is None else {"name": name}
    gap_table = {int(k): _int_or_none(v) for k, v in gaps.items()}
    return WindowedSender(ctx.system,
                          ctx.resolve_addrs(placement, single=True),
                          [int(s) for s in symbols], int(epoch),
                          int(window_ps), gap_table, ctx.classifier,
                          stop_on_backoff=bool(stop_on_backoff), **kwargs)


@agent_kind("receiver", doc="window-synchronized covert-channel receiver")
def _build_receiver(ctx: BuildContext, name=None, *, n_windows, epoch,
                    window_ps, sleep_on_backoff=False, jitter_ps=0,
                    **placement):
    from repro.core.covert import WindowedReceiver

    kwargs = {} if name is None else {"name": name}
    receiver = WindowedReceiver(
        ctx.system, ctx.resolve_addrs(placement, single=True),
        int(n_windows), int(epoch), int(window_ps), ctx.classifier,
        sleep_on_backoff=bool(sleep_on_backoff), **kwargs)
    # Measurement jitter is enabled post-construction, exactly as the
    # imperative channel assembly did (the jitter RNG itself is seeded
    # from the agent name + system seed at construction either way).
    receiver.jitter_ps = int(jitter_ps)
    return receiver


@agent_kind("app", doc="synthetic SPEC-like application (RBMPKI classes)")
def _build_app(ctx: BuildContext, name=None, *, spec=None,
               intensity_class=None, seed=0, banks=None, n_requests=50_000,
               stop_time=None, start_time=None):
    from repro.cpu.app import AppSpec, SyntheticAppAgent, spec_like_app

    if (spec is None) == (intensity_class is None):
        raise ScenarioError(
            "app agent takes exactly one of 'spec' or 'intensity_class'")
    if spec is not None:
        data = dict(spec)
        data["banks"] = tuple((int(bg), int(b)) for bg, b in data["banks"])
        if name is not None:
            data["name"] = name
        app_spec = AppSpec(**data)
    else:
        if banks is None:
            org = ctx.system.config.org
            bank_list = tuple((g, b) for g in range(org.bankgroups)
                              for b in range(org.banks_per_group))
        else:
            bank_list = tuple((int(bg), int(b)) for bg, b in banks)
        app_spec = spec_like_app(
            str(intensity_class),
            name if name is not None else f"spec-{intensity_class}",
            seed=int(seed), banks=bank_list, n_requests=int(n_requests))
    return SyntheticAppAgent(
        ctx.system, app_spec,
        start_time=ctx.start_time(start_time),
        stop_time=_int_or_none(stop_time))


@agent_kind("trace", doc="open-loop timed trace replay (browser process)")
def _build_trace(ctx: BuildContext, name=None, *, trace, start_time=None,
                 max_outstanding=4):
    from repro.cpu.trace import TraceReplayAgent

    kwargs = {} if name is None else {"name": name}
    return TraceReplayAgent(
        ctx.system, [(int(t), int(a)) for t, a in trace],
        start_time=ctx.start_time(start_time),
        max_outstanding=int(max_outstanding), **kwargs)


# ----------------------------------------------------------------------
# Composable kinds beyond the paper's cast
# ----------------------------------------------------------------------
@agent_kind("multi-probe",
            doc="N independent probes striped over disjoint row regions")
def _build_multi_probe(ctx: BuildContext, name=None, *, count, bank=(0, 0),
                       first_row=0, rows_per_probe=2, row_stride=8,
                       region_stride=None, **probe_params):
    """Expand one spec into ``count`` probes, each measuring its own
    row region of one bank -- a many-vantage-point observer (e.g. for
    localizing which bank a victim hammers, or for densifying the
    fingerprinting signal)."""
    count = int(count)
    if count < 1:
        raise ScenarioError("multi-probe needs count >= 1")
    base = name if name is not None else "multi-probe"
    if region_stride is None:
        region_stride = int(rows_per_probe) * int(row_stride)
    probes = []
    for i in range(count):
        first = int(first_row) + i * int(region_stride)
        rows = [first + j * int(row_stride)
                for j in range(int(rows_per_probe))]
        probes.append(_build_probe(
            ctx, name=f"{base}-{i}", bank=list(bank), rows=rows,
            **probe_params))
    return probes


@agent_kind("mixed-noise",
            doc="noise generator issuing a seeded read/write mix")
def _build_mixed_noise(ctx: BuildContext, name=None, *, sleep_ps=None,
                       intensity=None, write_ratio=0.5, stop_time=None,
                       burst=2, start_time=None, **placement):
    from repro.cpu.noise import RWNoiseAgent, sleep_for_noise_intensity

    if (sleep_ps is None) == (intensity is None):
        raise ScenarioError(
            "mixed-noise agent takes exactly one of 'sleep_ps' or "
            "'intensity'")
    if intensity is not None:
        sleep_ps = sleep_for_noise_intensity(float(intensity))
    kwargs = {} if name is None else {"name": name}
    return RWNoiseAgent(ctx.system, ctx.resolve_addrs(placement),
                        int(sleep_ps), write_ratio=float(write_ratio),
                        start_time=ctx.start_time(start_time),
                        stop_time=_int_or_none(stop_time), burst=int(burst),
                        **kwargs)
