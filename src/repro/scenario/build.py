"""Scenario assembly and execution.

:func:`build` turns a :class:`~repro.scenario.spec.ScenarioSpec` into a
:class:`BuiltScenario`: one :class:`~repro.system.MemorySystem`, one
shared :class:`~repro.core.probe.LatencyClassifier`, and the agents of
the spec's first stage, constructed *in spec order* (construction and
start order pin event-queue tie-breaks, so a scenario build is
bit-identical to the imperative assembly it replaced).  Later stages
are assembled lazily when execution reaches them, on the same aged
system -- their agents may anchor ``start_time`` to "now".

:meth:`BuiltScenario.run` executes every stage with exactly the
semantics of :func:`repro.cpu.agent.run_agents` (start all, advance in
deadline/100 chunks until every agent reports done, raise past the
hard limit), then runs the spec's measurement collectors.
"""

from __future__ import annotations

from repro.cpu.agent import Agent
from repro.scenario.registry import BuildContext, build_agents
from repro.scenario.result import ScenarioResult
from repro.scenario.spec import ScenarioError, ScenarioSpec
from repro.system import MemorySystem


class BuiltScenario:
    """A spec resolved into live simulation objects, ready to run."""

    def __init__(self, spec: ScenarioSpec, sim=None) -> None:
        self.spec = spec
        self.system = MemorySystem(spec.system, sim=sim)
        self.classifier = spec.classifier()
        self.agents: list[Agent] = []
        self.by_name: dict[str, Agent] = {}
        self._stage_agents: dict[int, list[Agent]] = {}
        self._ran = False
        if spec.stages:
            self._build_stage(spec.stages[0])

    # ------------------------------------------------------------------
    def _build_stage(self, stage: int) -> list[Agent]:
        ctx = BuildContext(system=self.system, classifier=self.classifier,
                           now=self.system.sim.now)
        built: list[Agent] = []
        for agent_spec in self.spec.agents_of_stage(stage):
            built.extend(build_agents(ctx, agent_spec))
        for agent in built:
            if agent.name in self.by_name:
                raise ScenarioError(
                    f"duplicate agent name {agent.name!r}; name agents "
                    "uniquely so measurements can address them")
            self.by_name[agent.name] = agent
        self.agents.extend(built)
        self._stage_agents[stage] = built
        return built

    def agent(self, name: str) -> Agent:
        try:
            return self.by_name[name]
        except KeyError:
            # ScenarioError (not KeyError): a typoed agent name in a
            # measurement spec must surface through the CLI's clean
            # malformed-spec path.
            known = ", ".join(self.by_name)
            raise ScenarioError(
                f"no agent named {name!r}; built agents: {known}") from None

    # ------------------------------------------------------------------
    def run(self) -> ScenarioResult:
        """Execute every stage, then collect the measurements."""
        if self._ran:
            raise RuntimeError(
                "scenario already ran; build a fresh one to rerun")
        self._ran = True
        spec = self.spec
        system = self.system
        stop = spec.stop
        stage_starts: list[int] = []
        for stage in spec.stages:
            agents = self._stage_agents.get(stage)
            if agents is None:
                agents = self._build_stage(stage)
            start = system.sim.now
            stage_starts.append(start)
            for agent in agents:
                agent.start()
            if not agents:
                continue
            deadline = start + stop.hard_limit_ps
            step = (stop.step_ps if stop.step_ps is not None
                    else max(deadline // 100, 1))
            system.run_until(
                lambda agents=agents: all(a.done for a in agents),
                step, deadline)
        return self._collect(stage_starts)

    def _collect(self, stage_starts: list[int]) -> ScenarioResult:
        from repro.scenario.measure import collect_measurement

        result = ScenarioResult(
            name=self.spec.name,
            final_now=self.system.sim.now,
            stage_starts=stage_starts,
            counters=dict(self.system.stats.act_rate_summary),
            spec=self.spec,
            system=self.system,
            agents=list(self.agents),
        )
        for mspec in self.spec.measurements:
            if mspec.key in result.data:
                raise ScenarioError(
                    f"duplicate measurement label {mspec.key!r}")
            result.data[mspec.key] = collect_measurement(self, mspec)
        return result


def build(spec: ScenarioSpec, sim=None) -> BuiltScenario:
    """Assemble a spec (see the module docstring)."""
    return BuiltScenario(spec, sim=sim)
