"""Declarative scenario specifications.

A *scenario* is everything one paper experiment trial is made of -- a
memory system (:class:`~repro.sim.config.SystemConfig`), a cast of
agents (probes, noise generators, covert senders/receivers, victim
applications, trace replays), a stop condition, and the measurements to
collect -- expressed as plain data.  Specs serialize losslessly to JSON
(:meth:`ScenarioSpec.to_dict` / :meth:`ScenarioSpec.from_dict`), hash
stably across processes (:meth:`ScenarioSpec.cache_key`), and pickle
cleanly, so a trial shipped to a worker process or cached on disk is a
value, not a closure::

    >>> from repro.scenario import AgentSpec, ScenarioSpec, StopSpec
    >>> from repro.sim.config import DefenseKind, DefenseParams, SystemConfig
    >>> spec = ScenarioSpec(
    ...     system=SystemConfig(defense=DefenseParams(kind=DefenseKind.PRAC)),
    ...     agents=(AgentSpec("probe", params={
    ...         "bank": [0, 0], "rows": [0, 8], "max_samples": 64}),),
    ...     stop=StopSpec(hard_limit_ps=50_000_000_000))
    >>> result = spec.run()
    >>> result.agent("probe").samples[0].delta > 0
    True

Building (:meth:`ScenarioSpec.build`) resolves each agent kind through
the registry in :mod:`repro.scenario.registry`; running executes the
stop condition exactly like :func:`repro.cpu.agent.run_agents`, so a
scenario-built experiment is bit-identical to its hand-assembled
predecessor.
"""

from __future__ import annotations

import enum
import hashlib
import json
from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING

from repro.sim.config import SystemConfig

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.scenario.build import BuiltScenario
    from repro.scenario.result import ScenarioResult


class ScenarioError(ValueError):
    """Malformed scenario spec (unknown agent kind, bad params, ...)."""


def _json_normal(value):
    """Normalize a params value to its canonical JSON shape.

    Tuples become lists, enum members their values, and dict keys
    strings -- so ``from_dict(to_dict(spec)) == spec`` holds exactly,
    and a spec that went through ``json.dumps``/``json.loads`` compares
    equal to the original.  Agent-kind builders accept the normalized
    shapes (e.g. string symbol keys in a sender's gap table).
    """
    if isinstance(value, enum.Enum):
        return _json_normal(value.value)
    if isinstance(value, dict):
        return {str(k): _json_normal(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_json_normal(v) for v in value]
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    raise ScenarioError(
        f"scenario param value {value!r} is not JSON-serializable; "
        "specs must be pure data")


@dataclass(frozen=True)
class AgentSpec:
    """One agent of the scenario cast, as data.

    ``kind`` names an entry of the agent registry
    (:func:`repro.scenario.registry.agent_kinds`); ``params`` are the
    kind's keyword arguments.  ``name`` defaults to the kind's own
    default agent name.  ``stage`` orders sequential phases: all
    stage-0 agents run to completion before stage-1 agents are built
    and started (on the *same*, already-aged memory system), which is
    how e.g. the counter-leak attack's victim-then-attacker protocol
    is expressed as one spec.
    """

    kind: str
    name: str | None = None
    stage: int = 0
    params: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.stage < 0:
            raise ScenarioError("agent stage must be >= 0")
        object.__setattr__(self, "params", _json_normal(dict(self.params)))

    def to_dict(self) -> dict:
        return {"kind": self.kind, "name": self.name, "stage": self.stage,
                "params": self.params}

    @classmethod
    def from_dict(cls, data: dict) -> "AgentSpec":
        unknown = set(data) - {"kind", "name", "stage", "params"}
        if unknown:
            raise ScenarioError(
                f"unknown AgentSpec fields: {sorted(unknown)}")
        return cls(kind=data["kind"], name=data.get("name"),
                   stage=int(data.get("stage", 0)),
                   params=dict(data.get("params", {})))


@dataclass(frozen=True)
class StopSpec:
    """When a scenario stage is over.

    A stage ends when every one of its agents reports done;
    ``hard_limit_ps`` bounds each stage (measured from the stage's
    start time, which for stage 0 of a fresh simulation is t=0 -- the
    exact semantics of :func:`repro.cpu.agent.run_agents`).
    ``step_ps`` is the done-check granularity (default: deadline/100,
    again matching ``run_agents``).
    """

    hard_limit_ps: int
    step_ps: int | None = None

    def __post_init__(self) -> None:
        if self.hard_limit_ps <= 0:
            raise ScenarioError("hard_limit_ps must be positive")
        if self.step_ps is not None and self.step_ps <= 0:
            raise ScenarioError("step_ps must be positive when given")

    def to_dict(self) -> dict:
        return {"hard_limit_ps": self.hard_limit_ps, "step_ps": self.step_ps}

    @classmethod
    def from_dict(cls, data: dict) -> "StopSpec":
        unknown = set(data) - {"hard_limit_ps", "step_ps"}
        if unknown:
            raise ScenarioError(f"unknown StopSpec fields: {sorted(unknown)}")
        return cls(hard_limit_ps=data["hard_limit_ps"],
                   step_ps=data.get("step_ps"))


@dataclass(frozen=True)
class MeasurementSpec:
    """One post-run collector, as data.

    ``kind`` names an entry of the measurement registry
    (:func:`repro.scenario.measure.measurement_kinds`); its output
    lands in ``ScenarioResult.data[label]`` (label defaults to the
    kind).
    """

    kind: str
    label: str | None = None
    params: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        object.__setattr__(self, "params", _json_normal(dict(self.params)))

    @property
    def key(self) -> str:
        return self.label if self.label is not None else self.kind

    def to_dict(self) -> dict:
        return {"kind": self.kind, "label": self.label, "params": self.params}

    @classmethod
    def from_dict(cls, data: dict) -> "MeasurementSpec":
        unknown = set(data) - {"kind", "label", "params"}
        if unknown:
            raise ScenarioError(
                f"unknown MeasurementSpec fields: {sorted(unknown)}")
        return cls(kind=data["kind"], label=data.get("label"),
                   params=dict(data.get("params", {})))


@dataclass(frozen=True)
class ScenarioSpec:
    """A complete scenario: system + agents + stop + measurements.

    The agent tuple is *ordered*: agents start (and therefore seed the
    event queue) in exactly this order, which pins tie-breaks and keeps
    scenario-built experiments bit-identical to their imperative
    predecessors.
    """

    system: SystemConfig = field(default_factory=SystemConfig)
    agents: tuple[AgentSpec, ...] = ()
    stop: StopSpec = field(default_factory=lambda: StopSpec(10 ** 12))
    measurements: tuple[MeasurementSpec, ...] = ()
    #: Latency-classifier measurement resolution shared by every agent
    #: that classifies samples (``None`` = the classifier default).
    resolution_ps: int | None = None
    name: str = "scenario"

    def __post_init__(self) -> None:
        object.__setattr__(self, "agents", tuple(self.agents))
        object.__setattr__(self, "measurements", tuple(self.measurements))

    # ------------------------------------------------------------------
    @property
    def stages(self) -> tuple[int, ...]:
        """Distinct agent stages, in execution order."""
        return tuple(sorted({a.stage for a in self.agents}))

    def agents_of_stage(self, stage: int) -> tuple[AgentSpec, ...]:
        return tuple(a for a in self.agents if a.stage == stage)

    def with_(self, **overrides) -> "ScenarioSpec":
        """Copy with field overrides (mirrors ``SystemConfig.with_``)."""
        return replace(self, **overrides)

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "system": self.system.to_dict(),
            "agents": [a.to_dict() for a in self.agents],
            "stop": self.stop.to_dict(),
            "measurements": [m.to_dict() for m in self.measurements],
            "resolution_ps": self.resolution_ps,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ScenarioSpec":
        known = {"name", "system", "agents", "stop", "measurements",
                 "resolution_ps"}
        unknown = set(data) - known
        if unknown:
            raise ScenarioError(
                f"unknown ScenarioSpec fields: {sorted(unknown)}")
        try:
            return cls(
                name=data.get("name", "scenario"),
                system=SystemConfig.from_dict(data["system"]),
                agents=tuple(AgentSpec.from_dict(a)
                             for a in data.get("agents", [])),
                stop=StopSpec.from_dict(data["stop"]),
                measurements=tuple(MeasurementSpec.from_dict(m)
                                   for m in data.get("measurements", [])),
                resolution_ps=data.get("resolution_ps"),
            )
        except KeyError as exc:
            # Hand-written spec files: a missing required field must
            # surface as a malformed-spec error, not a bare KeyError.
            raise ScenarioError(
                f"scenario spec is missing required field {exc}") from None
        except TypeError as exc:
            # e.g. a string where a number belongs (hard_limit_ps="x").
            raise ScenarioError(
                f"malformed scenario spec: {exc}") from None

    def to_json(self, indent: int | None = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "ScenarioSpec":
        return cls.from_dict(json.loads(text))

    def cache_key(self) -> str:
        """Stable content hash, identical across processes and runs.

        Mirrors :meth:`SystemConfig.cache_key`: SHA-256 over the
        canonical JSON encoding, so equal specs key identically and any
        field change (system, agent params, stop, measurements) keys
        differently.
        """
        payload = json.dumps(self.to_dict(), sort_keys=True,
                             separators=(",", ":"))
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()

    # ------------------------------------------------------------------
    # Execution (delegates to repro.scenario.build)
    # ------------------------------------------------------------------
    def build(self, sim=None) -> "BuiltScenario":
        """Resolve every agent kind and assemble the memory system."""
        from repro.scenario.build import build

        return build(self, sim=sim)

    def classifier(self):
        """The configuration-derived latency classifier of this
        scenario's system -- available without assembling a memory
        system (latency levels are a pure function of the config)."""
        from repro.core.probe import LatencyClassifier

        return LatencyClassifier(self.system,
                                 resolution_ps=self.resolution_ps)

    def run(self) -> "ScenarioResult":
        """Build, execute every stage, and collect the measurements."""
        return self.build().run()

    def describe(self) -> str:
        """Human-readable one-screen summary of the spec."""
        lines = [f"scenario {self.name!r}",
                 f"  system: defense={self.system.defense.kind.value} "
                 f"refresh={self.system.refresh_policy.value} "
                 f"seed={self.system.seed}",
                 f"  stop: hard_limit={self.stop.hard_limit_ps} ps "
                 f"(per stage), step={self.stop.step_ps or 'auto'}",
                 f"  agents ({len(self.agents)}):"]
        for i, agent in enumerate(self.agents):
            shown = {k: v for k, v in sorted(agent.params.items())}
            text = json.dumps(shown)
            if len(text) > 120:
                text = text[:117] + "..."
            lines.append(f"    [{i}] kind={agent.kind} "
                         f"name={agent.name or '(default)'} "
                         f"stage={agent.stage} params={text}")
        if self.measurements:
            lines.append(f"  measurements ({len(self.measurements)}):")
            for m in self.measurements:
                lines.append(f"    {m.key}: kind={m.kind} "
                             f"params={json.dumps(m.params)}")
        lines.append(f"  cache_key: {self.cache_key()[:16]}...")
        return "\n".join(lines)
