"""Declarative scenarios: system + agents + measurement, as data.

The package redesigns experiment construction around serializable
specs (see :mod:`repro.scenario.spec` for the full story)::

    spec = ScenarioSpec(system=..., agents=(AgentSpec("probe", ...),),
                        stop=StopSpec(...), measurements=(...))
    result = spec.run()          # -> typed ScenarioResult
    payload = spec.to_dict()     # JSON round-trip / worker hand-off
    key = spec.cache_key()       # stable across processes

Agent kinds resolve through :mod:`repro.scenario.registry`
(``probe``, ``noise``, ``sender``, ``receiver``, ``app``, ``trace``,
``multi-probe``, ``mixed-noise``); measurement kinds through
:mod:`repro.scenario.measure`.
"""

from repro.scenario.build import BuiltScenario, build
from repro.scenario.measure import measurement, measurement_kinds
from repro.scenario.presets import get_preset, preset_names
from repro.scenario.registry import agent_kind, agent_kinds
from repro.scenario.result import ScenarioResult
from repro.scenario.spec import (
    AgentSpec,
    MeasurementSpec,
    ScenarioError,
    ScenarioSpec,
    StopSpec,
)

__all__ = [
    "AgentSpec",
    "BuiltScenario",
    "MeasurementSpec",
    "ScenarioError",
    "ScenarioResult",
    "ScenarioSpec",
    "StopSpec",
    "agent_kind",
    "agent_kinds",
    "build",
    "get_preset",
    "measurement",
    "measurement_kinds",
    "preset_names",
]
