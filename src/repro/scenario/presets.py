"""Ready-made scenario specs for the CLI (``python -m repro scenario``).

Each preset is a zero-argument factory returning a
:class:`~repro.scenario.spec.ScenarioSpec`; the CLI's ``-p`` overrides
then reach into the spec's dict form (``system.defense.nbo=64``,
``agents.0.params.max_samples=128``, ...) before it is rebuilt and run.
"""

from __future__ import annotations

from typing import Callable

from repro.scenario.spec import (
    AgentSpec,
    MeasurementSpec,
    ScenarioError,
    ScenarioSpec,
    StopSpec,
)
from repro.sim.config import DefenseKind, DefenseParams, SystemConfig
from repro.sim.engine import MS, US

_PRESETS: dict[str, tuple[str, Callable[[], ScenarioSpec]]] = {}


def preset(name: str, doc: str) -> Callable:
    def decorate(fn: Callable[[], ScenarioSpec]) -> Callable:
        if name in _PRESETS:
            raise ScenarioError(
                f"scenario preset {name!r} already registered")
        _PRESETS[name] = (doc, fn)
        return fn

    return decorate


def preset_names() -> dict[str, str]:
    """Preset name -> one-line description."""
    return {name: doc for name, (doc, _) in sorted(_PRESETS.items())}


def get_preset(name: str) -> ScenarioSpec:
    try:
        _, fn = _PRESETS[name]
    except KeyError:
        known = ", ".join(sorted(_PRESETS))
        raise ScenarioError(
            f"unknown scenario preset {name!r}; known: {known}") from None
    return fn()


# ----------------------------------------------------------------------
@preset("prac-probe",
        "Listing-1 latency probe against a PRAC-protected system (Fig. 2)")
def _prac_probe() -> ScenarioSpec:
    return ScenarioSpec(
        name="prac-probe",
        system=SystemConfig(
            defense=DefenseParams(kind=DefenseKind.PRAC, nbo=128)),
        agents=(AgentSpec("probe", params={
            "bank": (0, 0), "rows": (0, 8), "max_samples": 512}),),
        stop=StopSpec(hard_limit_ps=50 * MS),
        measurements=(
            MeasurementSpec("latency-classes", params={"agent": "probe"}),
        ))


@preset("prac-covert",
        "PRAC back-off covert channel transmitting one byte (Sec. 6)")
def _prac_covert() -> ScenarioSpec:
    from repro.core.prac_channel import PracCovertChannel
    from repro.workloads.patterns import bits_from_text

    channel = PracCovertChannel()
    return channel.scenario(bits_from_text("K")).with_(
        name="prac-covert",
        measurements=(
            MeasurementSpec("samples", params={"agent": "receiver"}),
        ))


@preset("rfm-covert",
        "Periodic-RFM covert channel transmitting one byte (Sec. 7)")
def _rfm_covert() -> ScenarioSpec:
    from repro.core.rfm_channel import RfmCovertChannel
    from repro.workloads.patterns import bits_from_text

    channel = RfmCovertChannel()
    return channel.scenario(bits_from_text("K")).with_(
        name="rfm-covert",
        measurements=(
            MeasurementSpec("samples", params={"agent": "receiver"}),
        ))


@preset("noise-duel",
        "multi-probe observer vs a mixed read/write noise generator")
def _noise_duel() -> ScenarioSpec:
    duration = 2 * MS
    return ScenarioSpec(
        name="noise-duel",
        system=SystemConfig(
            defense=DefenseParams(kind=DefenseKind.PRAC, nbo=64)),
        agents=(
            AgentSpec("multi-probe", params={
                "count": 3, "bank": (0, 0), "first_row": 64,
                "rows_per_probe": 2, "row_stride": 8,
                "stop_time": duration}),
            AgentSpec("mixed-noise", params={
                "bank": (0, 0), "rows": (0, 8), "intensity": 60.0,
                "write_ratio": 0.3, "stop_time": duration}),
        ),
        stop=StopSpec(hard_limit_ps=duration + 200 * US),
        measurements=(
            MeasurementSpec("event-count", label="probe0-backoffs",
                            params={"agent": "multi-probe-0",
                                    "kinds": ("backoff",)}),
        ))
