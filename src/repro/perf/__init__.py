"""Reproducible performance measurement for the simulator hot path.

``python -m repro bench`` runs a fixed micro-suite (raw engine
throughput, controller row-hit and row-conflict streams, one
covert-channel trial, one quick-report slice, and the full
``report --no-cache`` wall time), compares against the most recent
``BENCH_*.json`` at the repository root, and writes a new one --
the performance trajectory future optimization PRs are judged against.
"""

_BENCH_EXPORTS = ("BenchConfig", "collect_metrics", "compare",
                  "find_previous", "run_bench")

__all__ = list(_BENCH_EXPORTS)


def __getattr__(name):
    # Lazy re-export: `python -m repro list/run/report` imports this
    # package for the CLI's argument definitions and must not pay for
    # the bench machinery.
    if name in _BENCH_EXPORTS:
        from repro.perf import bench

        return getattr(bench, name)
    raise AttributeError(name)
