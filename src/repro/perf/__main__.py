"""Standalone entry point: ``python -m repro.perf [--quick] ...``.

Equivalent to ``python -m repro bench``; exists so the suite can be
pointed at older checkouts of the library (whose CLI predates the
``bench`` subcommand) when collecting before/after trajectories.
"""

from repro.perf.cli import main

if __name__ == "__main__":
    raise SystemExit(main())
