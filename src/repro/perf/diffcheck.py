"""Differential equivalence harness: fast-forward on vs. off.

The steady-state fast-forward engine (:mod:`repro.sim.fastforward`)
promises *bit-identical* simulation results.  This module machine-
checks that promise instead of trusting the argument:

* every **registered experiment** runs twice -- fast-forward forced
  off, then forced on -- at reduced-but-faithful scales, and the
  canonicalized result values must be equal;
* every **scenario spec** (the registered presets' cousins, plus
  seeded random specs from :mod:`repro.scenario.fuzz`) runs twice with
  a *deep* capture -- the serializable result core, every blocking
  interval, every ground-truth counter, and a per-agent sample
  checksum -- and the captures must be equal.

A scenario mismatch is **shrunk** to a minimal failing spec (dropping
agents, halving scales, stripping measurements while the mismatch
persists) and written as a JSON artifact next to the report, so a
failure lands as a reproducible test case, not a shrug.

CLI: ``python -m repro diffcheck [--all | NAME...] [--fuzz N]``.
"""

from __future__ import annotations

import json
import time
import zlib
from dataclasses import dataclass, field
from pathlib import Path

from repro.sim import fastforward

#: Reduced-but-faithful parameter points for the experiment sweep.
#: Scales are chosen so the full 21-experiment double sweep stays
#: interactive; every driver still exercises its real machinery
#: (channels, sweeps, classifiers, defenses).
EXPERIMENT_PARAMS: dict[str, dict] = {
    "fig2": {"n_samples": 300, "nbo": 64},
    "fig3": {"text": "MI", "pattern_bits": 8},
    "fig4": {"intensities": [1, 50], "n_bits": 4},
    "fig5": {"n_bits": 4},
    "sec63": {"n_symbols": 4, "noise_intensity": 1.0},
    "fig11": {"intensities": [1, 50], "n_bits": 4},
    "fig12": {"latencies_ns": [0, 96], "n_bits": 4},
    "fig6": {"text": "MI", "pattern_bits": 8},
    "fig7": {"intensities": [1, 50], "n_bits": 4},
    "fig8": {"n_bits": 4},
    "fig9": {"n_sites": 2, "traces_per_site": 1},
    "fig10": {"n_sites": 3, "traces_per_site": 4, "n_splits": 2},
    "sec103": {"n_bits": 4, "n_sites": 2, "traces_per_site": 2},
    "sec91": {"secrets": [20, 90]},
    "table3": {},
    "sec114": {"n_bits": 4, "noise_intensity": 30.0},
    "fig13": {"nrh_values": [1024, 128], "n_mixes": 1,
              "n_requests": 2000},
    "sec12": {"n_bits": 4, "para_probability": 0.005},
    "ablation-refresh": {"n_samples": 300},
    "ablation-trecv": {"trecv_values": [3], "n_bits": 4},
    "ablation-window": {"windows_us": [25], "n_bits": 4},
}

#: The quick smoke subset (CI): cheap but covering a plain probe, a
#: full covert transmission, and the counter-leak protocol.
QUICK_EXPERIMENTS = ("fig2", "fig3", "sec91")


@dataclass
class DiffOutcome:
    """One name's off-vs-on comparison."""

    name: str
    kind: str  #: "experiment" | "scenario"
    identical: bool
    detail: str = ""  #: first-mismatch path, empty when identical
    base_seconds: float = 0.0
    ff_seconds: float = 0.0
    #: Fast-forward engagement during the "on" run (process deltas).
    jumps: int = 0
    cycles: int = 0
    #: Path of the shrunken failing-spec artifact (scenario mismatches).
    artifact: str | None = None

    @property
    def speedup(self) -> float:
        if self.ff_seconds <= 0:
            return 0.0
        return self.base_seconds / self.ff_seconds


@dataclass
class DiffReport:
    """Outcome of one diffcheck sweep."""

    outcomes: list[DiffOutcome] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return all(o.identical for o in self.outcomes)

    @property
    def mismatches(self) -> list[DiffOutcome]:
        return [o for o in self.outcomes if not o.identical]

    def to_text(self) -> str:
        lines = [f"{'name':24s} {'kind':10s} {'identical':9s} "
                 f"{'ff jumps':>8s} {'speedup':>8s}"]
        lines.append("-" * 64)
        for o in self.outcomes:
            lines.append(
                f"{o.name:24s} {o.kind:10s} "
                f"{'yes' if o.identical else 'NO':9s} "
                f"{o.jumps:8d} {o.speedup:7.2f}x")
            if not o.identical:
                lines.append(f"    first mismatch: {o.detail}")
                if o.artifact:
                    lines.append(f"    shrunken spec:  {o.artifact}")
        n = len(self.outcomes)
        bad = len(self.mismatches)
        jumps = sum(o.jumps for o in self.outcomes)
        lines.append("-" * 64)
        lines.append(
            f"{n} case(s), {n - bad} identical, {bad} mismatched; "
            f"{jumps} fast-forward jump(s) exercised")
        return "\n".join(lines)


# ----------------------------------------------------------------------
# Deep scenario capture
# ----------------------------------------------------------------------
def _sample_digest(samples) -> list:
    """Order-sensitive checksum of a probe's full sample log."""
    crc = 0
    for s in samples:
        crc = zlib.crc32(b"%d,%d,%d;" % (s.end_time, s.delta, s.addr),
                         crc)
    return [len(samples), crc]


def deep_scenario_run(spec) -> dict:
    """Run a spec and capture everything the physics determines:
    the serializable result core plus ground truth that specs do not
    necessarily measure (blocks, all counters, agent completion times,
    per-agent sample checksums)."""
    built = spec.build()
    result = built.run()
    doc = result.to_dict()
    stats = built.system.stats
    agents = {}
    for agent in built.agents:
        entry = {"done": agent.done, "finish_time": agent.finish_time}
        samples = getattr(agent, "samples", None)
        if samples is not None:
            entry["samples"] = _sample_digest(samples)
        agents[agent.name] = entry
    doc["ground_truth"] = {
        "final_now": built.system.sim.now,
        "counters": dict(stats.act_rate_summary),
        "precharges": stats.precharges,
        "para_refreshes": stats.para_refreshes,
        "blocks": [
            [b.kind.value, b.start, b.end, b.rank,
             sorted(b.banks) if b.banks is not None else None]
            for b in stats.blocks],
        "agents": agents,
    }
    return doc


def first_diff(a, b, path: str = "$") -> str | None:
    """Human-readable path of the first difference between two JSON-ish
    values (``None`` when equal)."""
    if type(a) is not type(b):
        return f"{path}: type {type(a).__name__} != {type(b).__name__}"
    if isinstance(a, dict):
        # Callers pass (fast, base): a missing key in ``a`` exists only
        # in the baseline capture, and vice versa.
        for key in sorted(set(a) | set(b), key=str):
            if key not in a:
                return f"{path}.{key}: only in baseline run"
            if key not in b:
                return f"{path}.{key}: only in fast-forward run"
            sub = first_diff(a[key], b[key], f"{path}.{key}")
            if sub:
                return sub
        return None
    if isinstance(a, (list, tuple)):
        if len(a) != len(b):
            return f"{path}: length {len(a)} != {len(b)}"
        for i, (x, y) in enumerate(zip(a, b)):
            sub = first_diff(x, y, f"{path}[{i}]")
            if sub:
                return sub
        return None
    if a != b:
        return f"{path}: {a!r} != {b!r}"
    return None


def _timed(fn):
    start = time.perf_counter()
    value = fn()
    return value, time.perf_counter() - start


def diff_scenario(spec, *, artifact_dir: str | None = None,
                  shrink: bool = True) -> DiffOutcome:
    """Run one spec through both engines and compare the deep capture."""
    with fastforward.forced("off"):
        base, base_s = _timed(lambda: deep_scenario_run(spec))
    before = fastforward.totals()
    with fastforward.forced("on"):
        fast, ff_s = _timed(lambda: deep_scenario_run(spec))
    after = fastforward.totals()
    detail = first_diff(fast, base) or ""
    outcome = DiffOutcome(
        name=spec.name, kind="scenario", identical=not detail,
        detail=detail, base_seconds=base_s, ff_seconds=ff_s,
        jumps=after["jumps"] - before["jumps"],
        cycles=after["cycles"] - before["cycles"])
    if detail and shrink:
        minimal = shrink_spec(spec)
        outcome.artifact = write_artifact(minimal, outcome,
                                          artifact_dir)
    return outcome


def diff_experiment(name: str, params: dict | None = None) -> DiffOutcome:
    """Run one registered experiment through both engines (cache
    bypassed, serial) and compare the canonicalized result values."""
    from repro.exp.cache import canonicalize
    from repro.exp.runner import run_experiment

    params = EXPERIMENT_PARAMS.get(name, {}) if params is None else params

    def run():
        value = run_experiment(name, dict(params), use_cache=False).value
        return canonicalize(value)

    with fastforward.forced("off"):
        base, base_s = _timed(run)
    before = fastforward.totals()
    with fastforward.forced("on"):
        fast, ff_s = _timed(run)
    after = fastforward.totals()
    detail = first_diff(fast, base) or ""
    return DiffOutcome(
        name=name, kind="experiment", identical=not detail,
        detail=detail, base_seconds=base_s, ff_seconds=ff_s,
        jumps=after["jumps"] - before["jumps"],
        cycles=after["cycles"] - before["cycles"])


# ----------------------------------------------------------------------
# Shrinking
# ----------------------------------------------------------------------
def _mismatches(spec) -> bool:
    with fastforward.forced("off"):
        base = deep_scenario_run(spec)
    with fastforward.forced("on"):
        fast = deep_scenario_run(spec)
    return first_diff(fast, base) is not None


def _shrink_candidates(spec):
    """Strictly-smaller variants of a spec, most aggressive first."""
    # Drop one agent at a time (never the last one).
    if len(spec.agents) > 1:
        for i in range(len(spec.agents)):
            agents = spec.agents[:i] + spec.agents[i + 1:]
            yield spec.with_(agents=agents)
    # Halve bounded scales.
    for i, agent in enumerate(spec.agents):
        for key in ("max_samples", "n_requests"):
            value = agent.params.get(key)
            if isinstance(value, int) and value > 8:
                params = dict(agent.params)
                params[key] = value // 2
                agents = list(spec.agents)
                agents[i] = _with_params(agent, params)
                yield spec.with_(agents=tuple(agents))
    # Strip measurements down to the ground truth (kept by deep_run).
    if spec.measurements:
        yield spec.with_(measurements=())


def _with_params(agent, params):
    from repro.scenario.spec import AgentSpec

    return AgentSpec(kind=agent.kind, name=agent.name, stage=agent.stage,
                     params=params)


def shrink_spec(spec, *, max_steps: int = 40):
    """Greedy shrink: keep applying the first still-failing candidate
    until none fails (or the step budget runs out)."""
    current = spec
    for _ in range(max_steps):
        for candidate in _shrink_candidates(current):
            try:
                failing = _mismatches(candidate)
            except Exception:  # noqa: BLE001 - a shrunk spec may be sick
                continue
            if failing:
                current = candidate
                break
        else:
            break
    return current


def write_artifact(spec, outcome: DiffOutcome,
                   artifact_dir: str | None) -> str:
    """Persist a failing (shrunken) spec + mismatch detail as JSON."""
    directory = Path(artifact_dir) if artifact_dir else Path.cwd()
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / f"diffcheck-failure-{spec.name}.json"
    with open(path, "w") as handle:
        json.dump({
            "scenario": spec.to_dict(),
            "first_mismatch": outcome.detail,
            "note": "minimal spec whose results differ between "
                    "fast-forward off and on; rerun with "
                    "`python -m repro diffcheck --spec " + path.name
                    + "`",
        }, handle, indent=1, sort_keys=True)
        handle.write("\n")
    return str(path)


# ----------------------------------------------------------------------
# Sweeps
# ----------------------------------------------------------------------
def run_diffcheck(*, experiments: list[str] | None = None,
                  fuzz: int = 0, fuzz_seed: int = 0x5EED,
                  fuzz_multi: int = 0, fuzz_multi_seed: int = 0xA117,
                  spec_files: list[str] | None = None,
                  artifact_dir: str | None = None,
                  backend: str | None = None,
                  log=lambda msg: None) -> DiffReport:
    """The full sweep: named experiments + fuzzed scenario specs (the
    adversarial single-probe profile plus ``fuzz_multi`` multi-agent
    periodic casts aimed at the joint fast-forward path) + explicit
    spec files.

    ``backend`` selects the sweep-execution backend the *experiment*
    runs fan out over (see :mod:`repro.dist`) — the equivalence check
    must hold under every backend, and the worker protocol ships the
    fast-forward forced mode with each task so remote trials stay
    pinned exactly like local ones.  Scenario cases always run
    in-process (their deep ground-truth capture reads live simulator
    state).
    """
    from repro.dist import check_backend_name, execution
    from repro.scenario.fuzz import random_multiagent_spec, random_spec
    from repro.scenario.spec import ScenarioSpec

    if backend is not None:
        check_backend_name(backend)
    report = DiffReport()
    with execution(backend=backend):
        for name in experiments or ():
            log(f"experiment {name} ...")
            report.outcomes.append(diff_experiment(name))
    for i in range(fuzz):  # in-process: deep capture reads live state
        spec = random_spec(fuzz_seed + i)
        log(f"scenario {spec.name} ...")
        report.outcomes.append(
            diff_scenario(spec, artifact_dir=artifact_dir))
    for i in range(fuzz_multi):
        spec = random_multiagent_spec(fuzz_multi_seed + i)
        log(f"scenario {spec.name} ...")
        report.outcomes.append(
            diff_scenario(spec, artifact_dir=artifact_dir))
    for path in spec_files or ():
        with open(path) as handle:
            data = json.load(handle)
        spec = ScenarioSpec.from_dict(data.get("scenario", data))
        log(f"scenario {spec.name} (from {path}) ...")
        report.outcomes.append(
            diff_scenario(spec, artifact_dir=artifact_dir))
    return report
