"""The ``repro bench`` micro-suite.

Design goals:

* **Fixed workloads.**  Every metric simulates a deterministic, pinned
  scenario, so numbers are comparable across commits on one machine.
* **Physics canary.**  The covert-trial metric also checks its decoded
  message and ground-truth stats against pinned values: a hot-path
  "optimization" that changes simulation results fails the bench before
  anyone trusts its speedup.
* **Trajectory, not thresholds.**  The bench writes
  ``BENCH_<timestamp>.json`` and reports ratios against the most recent
  previous file; it never fails on a slowdown (CI uses ``--quick`` as a
  smoke test only).

Timing uses the best of ``repeats`` runs (minimum wall time), which is
the standard way to suppress scheduler noise on shared machines.
"""

from __future__ import annotations

import contextlib
import gc
import json
import os
import platform
import subprocess
import sys
import time
from dataclasses import dataclass
from pathlib import Path

from repro.sim.config import RefreshPolicy, SystemConfig
from repro.sim.engine import NS, Simulator
from repro.system import MemorySystem

#: File-name prefix of benchmark result files at the repo root.
BENCH_PREFIX = "BENCH_"

#: Pinned expectations of the covert-trial canary (must match the
#: golden bit-identity test in ``tests/test_golden_identity.py``).
CANARY_SENT = [1, 0, 1, 1, 0, 0, 1, 0]
CANARY_BACKOFFS = 4


@dataclass(frozen=True)
class BenchConfig:
    """Scales of the micro-suite."""

    engine_events: int = 300_000
    controller_requests: int = 25_000
    scenario_builds: int = 300
    #: No-op trials pushed through the shards backend for the
    #: dispatch-overhead metric.
    dispatch_points: int = 64
    #: Cached-hit requests pushed through an in-process ``repro serve``
    #: for the HTTP fast-path metric.
    serve_requests: int = 300
    repeats: int = 3
    #: Include the full ``python -m repro report --no-cache`` subprocess
    #: wall measurement (skipped by ``--quick``).
    full_report: bool = True

    @classmethod
    def quick(cls) -> "BenchConfig":
        return cls(engine_events=60_000, controller_requests=6_000,
                   scenario_builds=50, dispatch_points=16,
                   serve_requests=80, repeats=1,
                   full_report=False)


# ----------------------------------------------------------------------
# Micro benchmarks
# ----------------------------------------------------------------------
def _bench_engine(n_events: int) -> float:
    """Raw engine dispatch rate (events/second).

    The schedule mix mirrors a memory simulation: a monotone fixed-delay
    chain (FIFO lane), interleaved immediate events (wake-ups) and
    occasional far-future events (refresh-style, heap lane).
    """
    sim = Simulator()
    state = {"count": 0}

    def noop() -> None:
        pass

    def tick() -> None:
        count = state["count"] = state["count"] + 1
        if count < n_events:
            sim.schedule(1 * NS, tick)
            if count % 3 == 0:
                sim.schedule(0, noop)
            if count % 64 == 0:
                sim.schedule(3900 * NS, noop)

    sim.schedule(1, tick)
    start = time.perf_counter()
    executed = sim.run()
    elapsed = time.perf_counter() - start
    return executed / elapsed


def _bench_controller(stream: str, n_requests: int) -> float:
    """Closed-loop request rate (requests/second) through the full
    system (controller + bank model + bus) for a row-hit or a
    row-conflict stream."""
    system = MemorySystem(SystemConfig(refresh_policy=RefreshPolicy.NONE))
    if stream == "hit":
        addrs = [system.mapper.encode(row=5, col=i % 64) for i in range(4)]
    elif stream == "conflict":
        addrs = [system.mapper.encode(row=r) for r in (5, 6)]
    else:  # pragma: no cover - internal suite definition
        raise ValueError(f"unknown stream {stream!r}")
    state = {"done": 0, "idx": 0}
    # The submit is the callback's tail call -- exactly the closed-loop
    # shape the wake-elision fast path serves (submit_tail falls back
    # to the deferred-wake path whenever elision is unsafe or off).
    submit = system.submit_tail

    def callback(req) -> None:
        done = state["done"] = state["done"] + 1
        if done < n_requests:
            idx = state["idx"] = (state["idx"] + 1) % len(addrs)
            submit(addrs[idx], callback)

    start = time.perf_counter()
    submit(addrs[0], callback)
    system.sim.run(until=1 << 60)
    elapsed = time.perf_counter() - start
    if state["done"] < n_requests:  # pragma: no cover - defensive
        raise RuntimeError("controller bench did not complete")
    return state["done"] / elapsed


def _bench_covert_trial() -> tuple[float, dict]:
    """One fixed-seed noisy PRAC covert-channel trial: wall seconds plus
    the physics canary (decoded message + ground-truth back-offs)."""
    from repro.core.prac_channel import PracChannelConfig, PracCovertChannel

    channel = PracCovertChannel(PracChannelConfig(noise_intensity=30.0))
    start = time.perf_counter()
    result = channel.transmit(list(CANARY_SENT))
    elapsed = time.perf_counter() - start
    canary = {
        "decoded": result.decoded,
        "ground_truth_backoffs": result.ground_truth_backoffs,
        "ok": (result.decoded == CANARY_SENT
               and result.ground_truth_backoffs == CANARY_BACKOFFS),
    }
    return elapsed, canary


def _bench_covert_steadystate() -> tuple[float, float, bool]:
    """The steady-state-dominated covert trial: the PRAC sender +
    receiver channel with long (200 us) windows, where idle and
    post-back-off stretches dominate and the multi-agent fast-forward
    engine should be carrying the run.  Returns the FF-on wall
    seconds, the FF-off wall seconds, and a bit-identity check of the
    two worlds (decoded message + ground truth -- the equivalence
    canary for the jump engine itself)."""
    from repro.core.prac_channel import PracChannelConfig, PracCovertChannel
    from repro.sim import fastforward

    def one_world(mode: str):
        with fastforward.forced(mode):
            channel = PracCovertChannel(
                PracChannelConfig(window_ps=200_000_000))
            start = time.perf_counter()
            result = channel.transmit(list(CANARY_SENT))
            return time.perf_counter() - start, result

    off_seconds, off = one_world("off")
    on_seconds, on = one_world("on")
    identical = (on.decoded == off.decoded
                 and on.ground_truth_backoffs == off.ground_truth_backoffs
                 and on.ground_truth_rfms == off.ground_truth_rfms)
    return on_seconds, off_seconds, identical


def _pinned_scenario():
    """A fixed probe scenario exercising the declarative layer end to
    end (spec round-trip, registry resolution, build, run)."""
    from repro.scenario import AgentSpec, ScenarioSpec, StopSpec
    from repro.sim.config import DefenseKind, DefenseParams

    return ScenarioSpec(
        name="bench-probe",
        system=SystemConfig(
            defense=DefenseParams(kind=DefenseKind.PRAC, nbo=64)),
        agents=(AgentSpec("probe", params={
            "bank": (0, 0), "rows": (0, 8), "max_samples": 400}),),
        stop=StopSpec(50_000_000_000))


def _bench_scenario_build(n_builds: int) -> float:
    """Declarative-layer overhead: (to_dict -> from_dict -> build)
    cycles per second -- what a sharded sweep pays per shipped trial
    before any simulation runs."""
    from repro.scenario import ScenarioSpec

    spec = _pinned_scenario()
    start = time.perf_counter()
    for _ in range(n_builds):
        ScenarioSpec.from_dict(spec.to_dict()).build()
    elapsed = time.perf_counter() - start
    return n_builds / elapsed


def _bench_scenario_trial() -> float:
    """One pinned probe scenario, spec-to-result (build + run +
    measurement collection)."""
    spec = _pinned_scenario()
    start = time.perf_counter()
    result = spec.run()
    elapsed = time.perf_counter() - start
    if len(result.agent("probe").samples) != 400:  # pragma: no cover
        raise RuntimeError("scenario bench did not complete")
    return elapsed


def _dispatch_trial(point):
    """No-op trial: every microsecond it takes round-trip is backend
    dispatch overhead, not work."""
    return point


def _bench_backend_dispatch(n_points: int) -> float:
    """Wall seconds to push ``n_points`` no-op trials through the
    ``shards`` backend with 2 workers — serialization, scheduling, and
    pipe round-trips, with zero simulation inside.  The first repeat
    pays the fleet spawn; best-of-N reports the steady (fleet reused)
    dispatch cost a real sweep sees per batch.
    """
    from repro.dist import get_backend

    backend = get_backend("shards")
    points = list(range(n_points))
    start = time.perf_counter()
    out = backend.run(_dispatch_trial, points, [None] * n_points,
                      workers=2)
    elapsed = time.perf_counter() - start
    if out != points:  # pragma: no cover - defensive
        raise RuntimeError("backend dispatch bench returned wrong results")
    return elapsed


def _bench_fleet_dispatch(n_points: int) -> float:
    """Wall seconds to push ``n_points`` no-op trials through a
    remote-only TCP fleet on localhost: the same coordinator machinery
    as the stdio metric, plus socket round-trips instead of pipe
    writes.  Two ``repro worker --connect`` processes dial in and
    authenticate once; a small warm batch absorbs the dial-in and
    handshake, so the measured batch is the steady per-batch dispatch
    cost a cross-machine sweep sees.
    """
    from repro.dist.shards import ShardsBackend

    secret = "bench-fleet-secret"
    backend = ShardsBackend(listen="127.0.0.1:0", secret=secret,
                            spawn_local=False, join_wait=30.0)
    procs = []
    try:
        env = dict(os.environ)
        env["REPRO_FLEET_SECRET"] = secret
        env["PYTHONPATH"] = os.pathsep.join(p for p in sys.path if p)
        for _ in range(2):
            procs.append(subprocess.Popen(
                [sys.executable, "-m", "repro", "worker", "--no-warm",
                 "--connect", backend.server.address],
                stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
                env=env))
        warm = list(range(4))
        backend.run(_dispatch_trial, warm, [None] * len(warm), workers=2)
        points = list(range(n_points))
        start = time.perf_counter()
        out = backend.run(_dispatch_trial, points, [None] * n_points,
                          workers=2)
        elapsed = time.perf_counter() - start
        if out != points:  # pragma: no cover - defensive
            raise RuntimeError(
                "fleet dispatch bench returned wrong results")
        return elapsed
    finally:
        backend.close()
        for proc in procs:
            try:
                proc.wait(timeout=5)
            except subprocess.TimeoutExpired:  # pragma: no cover
                proc.kill()


def _bench_serve(n_requests: int) -> tuple[float, float]:
    """The server's cached-hit fast path: ``(best_latency_s, req/s)``.

    Primes a throwaway result cache with the fig3 quick result, then
    POSTs the identical submission ``n_requests`` times over one
    keep-alive connection to an in-process server.  Every request must
    come back 200/cached (a 202 would mean the hit path broke and the
    numbers measure simulation, not serving).
    """
    import http.client
    import shutil
    import tempfile

    from repro.exp.cache import ResultCache
    from repro.exp.runner import run_experiment
    from repro.serve.server import ServerThread

    tmp = tempfile.mkdtemp(prefix="repro-bench-serve-")
    try:
        cache = ResultCache(tmp)
        run_experiment("fig3", {"text": "MI", "pattern_bits": 8},
                       cache=cache)
        body = json.dumps(
            {"params": {"text": "MI", "pattern_bits": 8}}).encode()
        with ServerThread(cache=cache) as srv:
            host, port = srv.address
            conn = http.client.HTTPConnection(host, port, timeout=60)
            try:
                latencies = []
                start = time.perf_counter()
                for _ in range(n_requests):
                    t0 = time.perf_counter()
                    conn.request("POST", "/v1/experiments/fig3",
                                 body=body)
                    response = conn.getresponse()
                    payload = response.read()
                    latencies.append(time.perf_counter() - t0)
                    if response.status != 200:  # pragma: no cover
                        raise RuntimeError(
                            f"serve bench got {response.status}: "
                            f"{payload[:200]!r}")
                total = time.perf_counter() - start
            finally:
                conn.close()
        return min(latencies), n_requests / total
    finally:
        shutil.rmtree(tmp, ignore_errors=True)


def _bench_report_slice() -> float:
    """One quick-report slice (the fig3 PRAC message experiment), run
    in-process with the cache disabled."""
    from repro.exp.runner import run_experiment

    start = time.perf_counter()
    run_experiment("fig3", {"text": "MI", "pattern_bits": 8},
                   use_cache=False)
    return time.perf_counter() - start


def _bench_full_report() -> float:
    """Wall time of ``python -m repro report --no-cache`` as users run
    it (fresh interpreter, import cost included)."""
    start = time.perf_counter()
    proc = subprocess.run(
        [sys.executable, "-m", "repro", "report", "--no-cache"],
        stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL)
    elapsed = time.perf_counter() - start
    if proc.returncode != 0:  # pragma: no cover - defensive
        raise RuntimeError(
            f"report --no-cache exited with {proc.returncode}")
    return elapsed


def _best(fn, repeats: int):
    """Best-of-N: max for rates, caller picks min for durations."""
    return [fn() for _ in range(max(1, repeats))]


# ----------------------------------------------------------------------
# Suite driver
# ----------------------------------------------------------------------
@contextlib.contextmanager
def _gc_paused():
    """The harness owns its measurement conditions: every entry point
    (``python -m repro bench`` and ``python -m repro.perf`` alike)
    measures with the cyclic GC paused, exactly as the tuned CLI runs
    simulations.  Gen-0 collections cost several percent of wall time
    and would skew any entry point that forgot to pause."""
    was_enabled = gc.isenabled()
    gc.disable()
    try:
        yield
    finally:
        if was_enabled:
            gc.enable()
            gc.collect()


def collect_metrics(config: BenchConfig,
                    log=lambda msg: None) -> dict:
    """Run the micro-suite (GC paused); returns the metrics dict."""
    with _gc_paused():
        return _collect_metrics_inner(config, {}, log)


def _collect_metrics_inner(config, metrics, log):
    log("engine: raw event dispatch ...")
    rates = _best(lambda: _bench_engine(config.engine_events),
                  config.repeats)
    metrics["engine_events_per_sec"] = round(max(rates))

    log("controller: row-hit stream ...")
    rates = _best(
        lambda: _bench_controller("hit", config.controller_requests),
        config.repeats)
    metrics["controller_hit_requests_per_sec"] = round(max(rates))

    log("controller: row-conflict stream ...")
    rates = _best(
        lambda: _bench_controller("conflict", config.controller_requests),
        config.repeats)
    metrics["controller_conflict_requests_per_sec"] = round(max(rates))

    log("covert channel: one noisy PRAC trial ...")
    times = []
    canary: dict = {}
    for _ in range(max(1, config.repeats)):
        elapsed, canary = _bench_covert_trial()
        times.append(elapsed)
    metrics["covert_trial_seconds"] = round(min(times), 4)
    metrics["covert_trial_canary_ok"] = bool(canary.get("ok"))

    log("covert channel: steady-state trial (ff off vs on) ...")
    on_times, off_times, identical = [], [], True
    for _ in range(max(1, config.repeats)):
        on_s, off_s, same = _bench_covert_steadystate()
        on_times.append(on_s)
        off_times.append(off_s)
        identical = identical and same
    metrics["covert_steadystate_trial_seconds"] = round(min(on_times), 4)
    metrics["covert_steadystate_ff_speedup"] = round(
        min(off_times) / min(on_times), 2)
    metrics["covert_steadystate_identical"] = identical

    log("scenario: spec round-trip + build ...")
    rates = _best(lambda: _bench_scenario_build(config.scenario_builds),
                  config.repeats)
    metrics["scenario_build_per_sec"] = round(max(rates))

    log("scenario: pinned probe trial ...")
    times = _best(_bench_scenario_trial, config.repeats)
    metrics["scenario_trial_seconds"] = round(min(times), 4)

    log("dist: shards backend dispatch overhead ...")
    times = _best(
        lambda: _bench_backend_dispatch(config.dispatch_points),
        config.repeats)
    metrics["backend_dispatch_overhead_seconds"] = round(min(times), 4)

    log("dist: TCP fleet dispatch overhead (localhost) ...")
    # One pass, not best-of-N: the run spawns its own private fleet
    # and absorbs the handshake with an internal warm batch.
    metrics["fleet_dispatch_overhead_seconds"] = round(
        _bench_fleet_dispatch(config.dispatch_points), 4)

    log("serve: cached-hit HTTP fast path ...")
    # One call, not best-of-N: the run streams n_requests through a
    # single keep-alive connection and takes its own per-request best.
    latency, rate = _bench_serve(config.serve_requests)
    metrics["serve_cached_hit_latency_seconds"] = round(latency, 5)
    metrics["serve_cached_requests_per_sec"] = round(rate)

    log("telemetry: engine overhead canary (registry off vs on) ...")
    # The engine instrumentation publishes to the process-wide
    # registry only at run() exit, so toggling telemetry must not
    # move the dispatch rate.  Anything past the noise floor means a
    # per-event cost crept into the hot loop.
    from repro.obs import metrics as obs_metrics
    canary_repeats = max(5, config.repeats)
    was_enabled = obs_metrics.enabled()
    off_rate = on_rate = 0.0
    try:
        # Interleave the two states (alternating order) so frequency
        # scaling / scheduler drift lands on both sides equally; a
        # sequential A*N-then-B*N layout reads drift as "overhead".
        for i in range(canary_repeats):
            order = (False, True) if i % 2 == 0 else (True, False)
            for state in order:
                obs_metrics.set_enabled(state)
                rate = _bench_engine(config.engine_events)
                if state:
                    on_rate = max(on_rate, rate)
                else:
                    off_rate = max(off_rate, rate)
    finally:
        obs_metrics.set_enabled(was_enabled)
    overhead_pct = max(0.0, (off_rate - on_rate) / off_rate * 100.0)
    metrics["telemetry_engine_overhead_pct"] = round(overhead_pct, 2)
    metrics["telemetry_overhead_canary_ok"] = overhead_pct <= 2.0

    log("report slice: fig3 (no cache) ...")
    times = _best(_bench_report_slice, config.repeats)
    metrics["report_slice_seconds"] = round(min(times), 4)

    if config.full_report:
        log("full report: python -m repro report --no-cache ...")
        times = _best(_bench_full_report, config.repeats)
        metrics["report_no_cache_seconds"] = round(min(times), 4)
    return metrics


def find_previous(root: Path, quick: bool | None = None) -> Path | None:
    """Most recent ``BENCH_*.json`` at ``root`` (timestamped names sort
    chronologically).

    With ``quick`` set, only files whose recorded ``quick`` flag matches
    are considered: quick-scale and full-scale numbers are not
    comparable, and a stray ``--quick`` run next to the committed
    full-scale trajectory must not silently become the baseline.
    """
    for path in sorted(root.glob(f"{BENCH_PREFIX}*.json"), reverse=True):
        if quick is None:
            return path
        try:
            doc = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError):
            continue
        if bool(doc.get("quick")) == quick:
            return path
    return None


def compare(current: dict, previous: dict) -> dict:
    """Per-metric ratios vs a previous run.

    Rates report ``current/previous`` and durations
    ``previous/current``, so >1.0 always means "faster now".
    """
    out = {}
    prev_metrics = previous.get("metrics", {})
    for key, value in current["metrics"].items():
        prev = prev_metrics.get(key)
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            continue
        if not isinstance(prev, (int, float)) or isinstance(prev, bool):
            continue
        if prev <= 0 or value <= 0:
            continue
        if key.endswith("_seconds"):
            ratio = prev / value
        else:
            ratio = value / prev
        out[key] = {"previous": prev, "speedup": round(ratio, 3)}
    return out


def metric_set_diff(current: dict, previous: dict) -> dict:
    """Metric names present in only one of two BENCH docs.

    :func:`compare` silently skips metrics missing from either side
    (and tests pin that behaviour), so a comparison between two runs
    with disjoint metric sets looks deceptively empty.  This reports
    what the ratio table cannot: ``added`` names exist only in
    ``current``, ``removed`` only in ``previous``.
    """
    cur = set(current.get("metrics", {}))
    prev = set(previous.get("metrics", {}))
    return {"added": sorted(cur - prev), "removed": sorted(prev - cur)}


def run_bench(*, quick: bool = False, label: str | None = None,
              out_dir: str | os.PathLike | None = None,
              no_compare: bool = False,
              log=lambda msg: None) -> dict:
    """Run the suite, write ``BENCH_<timestamp>.json``, return the doc.

    ``out_dir`` defaults to the current working directory (the repo
    root when invoked as ``python -m repro bench`` from a checkout).
    """
    config = BenchConfig.quick() if quick else BenchConfig()
    root = Path(out_dir) if out_dir is not None else Path.cwd()
    root.mkdir(parents=True, exist_ok=True)

    doc: dict = {
        "schema": 1,
        "label": label or ("quick" if quick else "full"),
        "quick": quick,
        "timestamp": time.strftime("%Y%m%dT%H%M%SZ", time.gmtime()),
        "python": platform.python_version(),
        "platform": platform.platform(),
        "metrics": collect_metrics(config, log=log),
    }

    previous = None if no_compare else find_previous(root, quick=quick)
    if previous is not None:
        with open(previous) as handle:
            try:
                prev_doc = json.load(handle)
            except json.JSONDecodeError:
                prev_doc = None
        if prev_doc is not None:
            doc["comparison"] = {
                "against": previous.name,
                "previous_label": prev_doc.get("label"),
                "ratios": compare(doc, prev_doc),
                **metric_set_diff(doc, prev_doc),
            }

    out_path = root / f"{BENCH_PREFIX}{doc['timestamp']}.json"
    suffix = 1
    while out_path.exists():  # same-second rerun: keep both
        suffix += 1
        # '_' sorts after '.', so find_previous's name sort still picks
        # the latest rerun of the second.
        out_path = root / f"{BENCH_PREFIX}{doc['timestamp']}_{suffix}.json"
    with open(out_path, "w") as handle:
        json.dump(doc, handle, indent=1, sort_keys=True)
        handle.write("\n")
    doc["path"] = str(out_path)
    return doc
