"""Argument parsing and rendering for the bench suite."""

from __future__ import annotations

import argparse
import sys


def add_bench_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--quick", action="store_true",
                        help="small scales, one repeat, no full-report "
                             "subprocess (CI smoke mode)")
    parser.add_argument("--label", default=None,
                        help="free-form label stored in the BENCH json")
    parser.add_argument("--out-dir", default=None, metavar="DIR",
                        help="directory for BENCH_<timestamp>.json "
                             "(default: current directory)")
    parser.add_argument("--no-compare", action="store_true",
                        help="skip the comparison against the previous "
                             "BENCH file")
    parser.add_argument("--compare", nargs=2, default=None,
                        metavar=("OLD.json", "NEW.json"),
                        help="print the ratio table between two existing "
                             "BENCH files (NEW vs OLD) instead of "
                             "running the suite")


def render(doc: dict) -> str:
    lines = [f"# bench {doc['label']} ({doc['timestamp']})"]
    for key, value in sorted(doc["metrics"].items()):
        lines.append(f"{key:40s} {value}")
    comparison = doc.get("comparison")
    if comparison:
        lines.append("")
        lines.append(f"vs {comparison['against']} "
                     f"[{comparison.get('previous_label')}]  "
                     "(>1.0 = faster now)")
        for key, entry in sorted(comparison["ratios"].items()):
            lines.append(f"{key:40s} {entry['speedup']:6.2f}x "
                         f"(was {entry['previous']})")
        lines.extend(_set_diff_lines(comparison))
    return "\n".join(lines)


def _set_diff_lines(diff: dict) -> list[str]:
    """Render the added/removed metric names of a comparison block."""
    lines = []
    for verb, names in (("added", diff.get("added")),
                        ("removed", diff.get("removed"))):
        if names:
            lines.append(f"metrics {verb} since the baseline: "
                         + ", ".join(names))
    return lines


def render_comparison(old_path: str, new_path: str) -> str:
    """Ratio table between two committed BENCH files (NEW vs OLD)."""
    import json

    from repro.perf.bench import compare, metric_set_diff

    with open(old_path) as handle:
        old_doc = json.load(handle)
    with open(new_path) as handle:
        new_doc = json.load(handle)
    if bool(old_doc.get("quick")) != bool(new_doc.get("quick")):
        raise ValueError(
            f"cannot compare {old_path} (quick={old_doc.get('quick')}) "
            f"with {new_path} (quick={new_doc.get('quick')}): quick- and "
            "full-scale numbers are not comparable")
    ratios = compare(new_doc, old_doc)
    lines = [f"# bench compare: {new_path} "
             f"[{new_doc.get('label')}] vs {old_path} "
             f"[{old_doc.get('label')}]  (>1.0 = NEW faster)"]
    for key, entry in sorted(ratios.items()):
        now = new_doc["metrics"].get(key)
        lines.append(f"{key:40s} {entry['speedup']:6.2f}x "
                     f"(was {entry['previous']}, now {now})")
    diff = metric_set_diff(new_doc, old_doc)
    if not ratios and not diff["added"] and not diff["removed"]:
        lines.append("(no comparable metrics)")
    lines.extend(_set_diff_lines(diff))
    return "\n".join(lines)


def run_from_args(args) -> int:
    if getattr(args, "compare", None):
        old_path, new_path = args.compare
        try:
            print(render_comparison(old_path, new_path))
        except (OSError, ValueError, KeyError) as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        return 0

    from repro.perf.bench import run_bench  # deferred off CLI startup

    doc = run_bench(quick=args.quick, label=args.label,
                    out_dir=args.out_dir, no_compare=args.no_compare,
                    log=lambda msg: print(f"[bench] {msg}",
                                          file=sys.stderr))
    print(render(doc))
    print(f"\nbench results written to {doc['path']}", file=sys.stderr)
    if not doc["metrics"].get("covert_trial_canary_ok", False):
        print("bench: covert-trial canary FAILED -- simulation results "
              "changed; do not trust these numbers", file=sys.stderr)
        return 1
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.perf",
        description="LeakyHammer simulator performance micro-suite")
    add_bench_arguments(parser)
    return run_from_args(parser.parse_args(argv))
