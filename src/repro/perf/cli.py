"""Argument parsing and rendering for the bench suite."""

from __future__ import annotations

import argparse
import sys


def add_bench_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--quick", action="store_true",
                        help="small scales, one repeat, no full-report "
                             "subprocess (CI smoke mode)")
    parser.add_argument("--label", default=None,
                        help="free-form label stored in the BENCH json")
    parser.add_argument("--out-dir", default=None, metavar="DIR",
                        help="directory for BENCH_<timestamp>.json "
                             "(default: current directory)")
    parser.add_argument("--no-compare", action="store_true",
                        help="skip the comparison against the previous "
                             "BENCH file")


def render(doc: dict) -> str:
    lines = [f"# bench {doc['label']} ({doc['timestamp']})"]
    for key, value in sorted(doc["metrics"].items()):
        lines.append(f"{key:40s} {value}")
    comparison = doc.get("comparison")
    if comparison:
        lines.append("")
        lines.append(f"vs {comparison['against']} "
                     f"[{comparison.get('previous_label')}]  "
                     "(>1.0 = faster now)")
        for key, entry in sorted(comparison["ratios"].items()):
            lines.append(f"{key:40s} {entry['speedup']:6.2f}x "
                         f"(was {entry['previous']})")
    return "\n".join(lines)


def run_from_args(args) -> int:
    from repro.perf.bench import run_bench  # deferred off CLI startup

    doc = run_bench(quick=args.quick, label=args.label,
                    out_dir=args.out_dir, no_compare=args.no_compare,
                    log=lambda msg: print(f"[bench] {msg}",
                                          file=sys.stderr))
    print(render(doc))
    print(f"\nbench results written to {doc['path']}", file=sys.stderr)
    if not doc["metrics"].get("covert_trial_canary_ok", False):
        print("bench: covert-trial canary FAILED -- simulation results "
              "changed; do not trust these numbers", file=sys.stderr)
        return 1
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.perf",
        description="LeakyHammer simulator performance micro-suite")
    add_bench_arguments(parser)
    return run_from_args(parser.parse_args(argv))
