"""Pluggable sweep-execution backends (the distributed subsystem).

``repro.exp.runner.map_trials`` is the single choke point every sweep
in the repo flows through; this package supplies the interchangeable
engines behind it:

========  ============================================================
backend   execution model
========  ============================================================
serial    in-process, one trial at a time (the reference semantics)
pool      ``ProcessPoolExecutor`` fan-out (the classic ``--workers N``)
shards    long-lived ``python -m repro worker`` daemons fed
          newline-delimited JSON by a coordinator with crash
          detection, bounded retry, and per-trial timeouts
========  ============================================================

All backends return bit-identical results (machine-checked by the
sweep-equivalence tests and the CI ``dist-smoke`` job): trials are
pure data, seeds derive from point indices, and worker placement can
never leak into the physics.  Select one with ``--backend NAME``, the
``REPRO_BACKEND`` environment variable, or an :func:`execution`
context; the default ``auto`` keeps the historical behavior (pool for
multi-worker sweeps, serial otherwise).
"""

from repro.dist.base import (
    AUTO,
    BACKEND_ENV,
    Backend,
    BackendError,
    BackendUnavailable,
    IN_WORKER_ENV,
    backend_names,
    check_backend_name,
    get_backend,
    install_signal_shutdown,
    register_backend,
    resolve_backend_name,
    shutdown_backends,
    unregister_backend,
)
from repro.dist.context import (
    ExecutionContext,
    current_execution,
    execution,
)
from repro.dist.protocol import HandshakeError

__all__ = [
    "AUTO",
    "BACKEND_ENV",
    "Backend",
    "BackendError",
    "BackendUnavailable",
    "ExecutionContext",
    "HandshakeError",
    "IN_WORKER_ENV",
    "backend_names",
    "check_backend_name",
    "current_execution",
    "execution",
    "get_backend",
    "install_signal_shutdown",
    "register_backend",
    "resolve_backend_name",
    "shutdown_backends",
    "unregister_backend",
]
