"""In-process trial execution — the reference backend.

Every other backend's contract is "bit-identical to what this one
returns"; it is also the universal fallback when a fancier backend is
unavailable, and the forced backend inside worker processes.
"""

from __future__ import annotations

from typing import Callable, Sequence

from repro.dist.base import Backend


def call_point(fn: Callable, point, seed):
    """The one true trial call shape (shared with the pool workers)."""
    if seed is None:
        return fn(point)
    return fn(point, seed)


class SerialBackend(Backend):
    name = "serial"

    def run(self, fn, points: Sequence, seeds: Sequence, *,
            workers: int | None = None, on_result=None) -> list:
        results = []
        for i, (point, seed) in enumerate(zip(points, seeds)):
            value = call_point(fn, point, seed)
            results.append(value)
            if on_result is not None:
                on_result(i, value)
        return results
