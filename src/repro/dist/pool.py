"""Process-pool backend: the pre-subsystem ``--workers N`` path.

One :class:`~concurrent.futures.ProcessPoolExecutor` per sweep, sized
``min(workers, n_points)``.  Futures are submitted per point (instead
of ``pool.map``) so results stream back to the caller as they land —
that is what feeds the per-trial result cache and the progress line.

Failure semantics match the historical ``map_trials`` exactly:

* pool *machinery* failure (``OSError`` at construction, a
  ``BrokenExecutor`` while running) raises
  :class:`~repro.dist.base.BackendUnavailable` so the caller falls
  back to serial;
* a *trial* exception propagates unchanged, deterministically: when
  several trials fail, the lowest point index wins (the error the
  serial sweep would have hit first).
"""

from __future__ import annotations

import os
import pickle
from typing import Sequence

from repro.dist.base import Backend, BackendUnavailable, IN_WORKER_ENV
from repro.dist.serial import call_point


def _call_point_pinned(fn, point, seed, ff: str | None):
    """Worker-side trial call with the coordinator's fast-forward
    forced mode re-applied, plus the trial's jump totals.

    On fork platforms the child inherits the forced state anyway, but
    spawn/forkserver children do not — pinning explicitly keeps
    ``diffcheck --backend pool`` meaningful everywhere, exactly like
    the shards task frames.
    """
    # Same invariant as the shards daemons: a shipped trial that calls
    # map_trials itself resolves to serial, never a nested fleet.
    # (Pool children are reused, so setting it once per task is cheap.)
    os.environ[IN_WORKER_ENV] = "1"
    from repro.sim import fastforward

    before = fastforward.totals()
    with fastforward.forced(ff):
        value = call_point(fn, point, seed)
    after = fastforward.totals()
    delta = {k: after[k] - before[k] for k in after
             if after[k] != before[k]}
    return value, delta


class PoolBackend(Backend):
    name = "pool"

    def run(self, fn, points: Sequence, seeds: Sequence, *,
            workers: int | None = None, on_result=None) -> list:
        # Deferred import: the pool machinery is only paid for when a
        # parallel sweep is actually requested (keeps CLI startup lean).
        from concurrent.futures import (
            BrokenExecutor,
            ProcessPoolExecutor,
            as_completed,
        )

        from repro.sim import fastforward

        n = len(points)
        if n == 0:
            return []
        # Lambdas / nested functions cannot cross the pickle boundary;
        # fall back to serial (documented contract) instead of letting
        # every future die with a PicklingError.  Module-level
        # ``__main__`` functions still pass (fork children share it).
        try:
            pickle.dumps(fn)
        except Exception as exc:
            raise BackendUnavailable(
                f"trial function {fn!r} is not picklable ({exc})"
            ) from exc
        max_workers = min(workers or (os.cpu_count() or 1), n)
        try:
            pool = ProcessPoolExecutor(max_workers=max(1, max_workers))
        except OSError as exc:
            raise BackendUnavailable(exc) from exc

        ff = fastforward.forced_mode()
        results: list = [None] * n
        errors: dict[int, BaseException] = {}
        try:
            with pool:
                futures = {
                    pool.submit(_call_point_pinned, fn, point, seed,
                                ff): i
                    for i, (point, seed) in enumerate(zip(points, seeds))}
                for future in as_completed(futures):
                    i = futures[future]
                    exc = future.exception()
                    if isinstance(exc, BrokenExecutor):
                        raise exc
                    if exc is not None:
                        errors[i] = exc
                        continue
                    results[i], ff_delta = future.result()
                    if ff_delta:
                        fastforward.absorb_totals(ff_delta)
                    # Stream even when another point already failed:
                    # completed work belongs in the trial cache either
                    # way (resume-after-fix skips it).
                    if on_result is not None:
                        on_result(i, results[i])
        except BrokenExecutor as exc:
            raise BackendUnavailable(exc) from exc
        if errors:
            raise errors[min(errors)]
        return results
