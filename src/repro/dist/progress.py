"""Live sweep progress: one updating stderr line.

``map_trials`` invokes its progress callback as ``progress(done,
total, cache_hits)`` every time a trial lands (or is served from the
per-trial cache).  :class:`SweepProgress` renders that as::

    17/44 trials (cache: 12 hits)

and, when a distributed sweep is underway (live workers or requeues in
the telemetry registry)::

    17/44 trials (cache: 12 hits, workers: 4, requeues: 1)

rewriting the same line in place.  :func:`tty_progress` hands one out
only when stderr is an interactive terminal — piped/CI output never
sees control characters.
"""

from __future__ import annotations

import sys

from repro.obs import metrics as _metrics


class SweepProgress:
    """Carriage-return progress line on a terminal stream."""

    def __init__(self, stream=None) -> None:
        self.stream = stream if stream is not None else sys.stderr
        self._active = False

    def __call__(self, done: int, total: int, cache_hits: int) -> None:
        if total <= 0:
            return
        line = f"{done}/{total} trials (cache: {cache_hits} hits"
        workers, requeues = _metrics.sweep_live()
        if workers or requeues:
            line += f", workers: {workers}, requeues: {requeues}"
        line += ")"
        self.stream.write(f"\r{line}\x1b[K")
        self.stream.flush()
        self._active = True

    def finish(self) -> None:
        """Clear the transient line (the real output follows)."""
        if self._active:
            self.stream.write("\r\x1b[K")
            self.stream.flush()
            self._active = False


def tty_progress(stream=None):
    """A :class:`SweepProgress` when the stream is a TTY, else ``None``."""
    stream = stream if stream is not None else sys.stderr
    try:
        is_tty = stream.isatty()
    except (AttributeError, ValueError):
        is_tty = False
    return SweepProgress(stream) if is_tty else None
