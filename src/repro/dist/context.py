"""Per-run execution context threaded under ``map_trials``.

``workers`` travels through driver signatures (it predates this
subsystem), but backend selection, the per-trial result cache, and the
progress callback would have to be added to every sweep helper and
driver to reach :func:`repro.exp.runner.map_trials` the same way.
Instead the CLI (and tests) install them ambiently::

    with execution(backend="shards", trial_cache=cache, progress=cb):
        run_experiment("fig4", {...}, workers=4)

Every ``map_trials`` call inside the block picks them up unless given
explicitly.  Contexts nest; inner values override outer ones field by
field.

The stack is **thread-local**: the serve subsystem runs jobs on a
background runner thread with its own ambient backend/cache/progress,
and neither that thread's context nor the main thread's may leak into
the other.  Each thread starts from a fresh default context (contexts
are deliberately not inherited across ``Thread.start()``).
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Callable


@dataclass(frozen=True)
class ExecutionContext:
    """Ambient sweep-execution settings (all optional)."""

    #: Backend name for ``map_trials`` (None -> env var / auto).
    backend: str | None = None
    #: :class:`~repro.exp.cache.ResultCache` streaming per-trial results
    #: (partial sweeps resume from it instead of restarting).
    trial_cache: object | None = None
    #: ``progress(done, total, cache_hits)`` called as trials land.
    progress: Callable[[int, int, int], None] | None = None


_local = threading.local()


def _stack() -> list[ExecutionContext]:
    stack = getattr(_local, "stack", None)
    if stack is None:
        stack = _local.stack = [ExecutionContext()]
    return stack


def current_execution() -> ExecutionContext:
    """The innermost execution context active on this thread."""
    return _stack()[-1]


@contextmanager
def execution(backend: str | None = None, trial_cache=None,
              progress=None):
    """Install an execution context for the duration of the block."""
    stack = _stack()
    outer = stack[-1]
    ctx = ExecutionContext(
        backend=backend if backend is not None else outer.backend,
        trial_cache=(trial_cache if trial_cache is not None
                     else outer.trial_cache),
        progress=progress if progress is not None else outer.progress)
    stack.append(ctx)
    try:
        yield ctx
    finally:
        stack.pop()
