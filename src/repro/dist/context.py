"""Per-run execution context threaded under ``map_trials``.

``workers`` travels through driver signatures (it predates this
subsystem), but backend selection, the per-trial result cache, and the
progress callback would have to be added to every sweep helper and
driver to reach :func:`repro.exp.runner.map_trials` the same way.
Instead the CLI (and tests) install them ambiently::

    with execution(backend="shards", trial_cache=cache, progress=cb):
        run_experiment("fig4", {...}, workers=4)

Every ``map_trials`` call inside the block picks them up unless given
explicitly.  Contexts nest; inner values override outer ones field by
field.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass
from typing import Callable


@dataclass(frozen=True)
class ExecutionContext:
    """Ambient sweep-execution settings (all optional)."""

    #: Backend name for ``map_trials`` (None -> env var / auto).
    backend: str | None = None
    #: :class:`~repro.exp.cache.ResultCache` streaming per-trial results
    #: (partial sweeps resume from it instead of restarting).
    trial_cache: object | None = None
    #: ``progress(done, total, cache_hits)`` called as trials land.
    progress: Callable[[int, int, int], None] | None = None


_stack: list[ExecutionContext] = [ExecutionContext()]


def current_execution() -> ExecutionContext:
    """The innermost active execution context."""
    return _stack[-1]


@contextmanager
def execution(backend: str | None = None, trial_cache=None,
              progress=None):
    """Install an execution context for the duration of the block."""
    outer = _stack[-1]
    ctx = ExecutionContext(
        backend=backend if backend is not None else outer.backend,
        trial_cache=(trial_cache if trial_cache is not None
                     else outer.trial_cache),
        progress=progress if progress is not None else outer.progress)
    _stack.append(ctx)
    try:
        yield ctx
    finally:
        _stack.pop()
