"""Shards backend: a coordinator over long-lived worker daemons.

``get_backend("shards")`` owns a fleet of ``python -m repro worker``
subprocesses (spawned lazily, reused across every sweep in the
process, shut down atexit) and schedules each sweep over them:

* **dispatch** — a job queue of point indices; idle workers pull the
  first compatible job.  Seeds were derived per point index *before*
  dispatch (:func:`repro.exp.runner.derive_seed`), so nothing about
  which worker runs a point — or in what order results land — can
  change the simulation.
* **crash detection** — a worker whose pipe hits EOF (or whose process
  exits) while a trial is in flight gets that point requeued, with the
  dead worker's id excluded so a respawned sibling takes it.  Retries
  are bounded (:data:`MAX_RETRIES`): a point that keeps killing
  workers raises :class:`ShardError` instead of looping forever.
* **per-trial timeout** — ``REPRO_SHARD_TIMEOUT`` seconds (float,
  unset/0 disables); an overdue worker is killed and handled exactly
  like a crash.
* **result streaming** — completions invoke ``on_result`` as they
  land, which is how :func:`~repro.exp.runner.map_trials` feeds the
  content-addressed result cache trial by trial (a killed sweep
  resumes from cache instead of restarting).
* **trial errors** — a Python exception inside a trial is not a crash:
  the worker ships it back and survives; the coordinator re-raises it
  (original type when picklable) and never retries, matching the pool
  and serial backends.

Workers inherit this process's ``sys.path`` via ``PYTHONPATH`` so the
fleet can execute any trial function the coordinator can import — the
local-machine analogue of shipping the code tree to a remote fleet.
"""

from __future__ import annotations

import os
import queue
import subprocess
import sys
import threading
import time
import warnings
from collections import deque
from typing import Sequence

from repro.dist.base import Backend, BackendUnavailable, IN_WORKER_ENV
from repro.dist.protocol import (
    dump_frame,
    decode_value,
    fn_ref,
    parse_frame,
    raise_remote,
    task_frame,
)

#: Per-trial wall-clock budget in seconds (float; unset/0 disables).
TIMEOUT_ENV = "REPRO_SHARD_TIMEOUT"

#: How many times one point may crash a worker before the sweep fails.
MAX_RETRIES = 2

_UNSET = object()


class ShardError(RuntimeError):
    """A point exhausted its crash-retry budget."""


class _Shard:
    """One worker subprocess plus its reader thread."""

    _counter = 0

    def __init__(self, outq: queue.Queue) -> None:
        _Shard._counter += 1
        index = _Shard._counter
        env = dict(os.environ)
        env[IN_WORKER_ENV] = "1"
        # Ship the coordinator's import universe: PYTHONPATH covers the
        # repro checkout and anything else (e.g. a test directory) the
        # parent could import trial functions from.
        env["PYTHONPATH"] = os.pathsep.join(p for p in sys.path if p)
        self.proc = subprocess.Popen(
            [sys.executable, "-m", "repro", "worker"],
            stdin=subprocess.PIPE, stdout=subprocess.PIPE, stderr=None,
            env=env, text=True, encoding="utf-8", bufsize=1)
        self.id = f"shard{index}:pid{self.proc.pid}"
        #: A task frame is in this worker's hands (spans run() calls:
        #: a sweep aborted by a trial error can leave a worker busy
        #: finishing a stale task; it frees up when its frame arrives).
        self.busy = False
        self._reader = threading.Thread(
            target=self._read_loop, args=(outq,), daemon=True,
            name=f"repro-{self.id}-reader")
        self._reader.start()

    def _read_loop(self, outq: queue.Queue) -> None:
        try:
            for line in self.proc.stdout:
                frame = parse_frame(line)
                if frame is not None:
                    outq.put(("frame", self, frame))
        except (OSError, ValueError):  # pragma: no cover - pipe teardown
            pass
        outq.put(("eof", self, None))

    @property
    def alive(self) -> bool:
        return self.proc.poll() is None

    def send(self, frame: dict) -> bool:
        try:
            self.proc.stdin.write(dump_frame(frame))
            self.proc.stdin.flush()
            return True
        except (OSError, ValueError):
            return False

    def kill(self) -> None:
        try:
            self.proc.kill()
        except OSError:  # pragma: no cover - already gone
            pass

    def shutdown(self) -> None:
        if self.alive:
            self.send({"op": "shutdown"})
            try:
                self.proc.stdin.close()
            except OSError:  # pragma: no cover
                pass
            try:
                self.proc.wait(timeout=2.0)
            except subprocess.TimeoutExpired:  # pragma: no cover
                self.kill()
        self.proc.wait()


class ShardsBackend(Backend):
    name = "shards"

    def __init__(self) -> None:
        self._outq: queue.Queue = queue.Queue()
        self._fleet: list[_Shard] = []
        self._epoch = 0
        #: Coordinator statistics of the most recent run() (tests and
        #: curious operators; not part of the result contract).
        self.last_stats: dict = {}

    # -- fleet management ------------------------------------------------
    def _spawn_one(self) -> _Shard:
        shard = _Shard(self._outq)
        self._fleet.append(shard)
        return shard

    def _ensure_fleet(self, n: int) -> None:
        self._fleet = [s for s in self._fleet if s.alive]
        while sum(1 for s in self._fleet if s.alive) < n:
            self._spawn_one()

    def close(self) -> None:
        fleet, self._fleet = self._fleet, []
        for shard in fleet:
            shard.shutdown()

    # -- the sweep coordinator -------------------------------------------
    def run(self, fn, points: Sequence, seeds: Sequence, *,
            workers: int | None = None, on_result=None) -> list:
        n = len(points)
        if n == 0:
            return []
        ref = fn_ref(fn)
        if ref is None:
            raise BackendUnavailable(
                f"trial function {fn!r} is not addressable as "
                "module:qualname (lambdas and nested functions cannot "
                "be shipped to workers)")
        fleet_size = min(max(1, workers or min(os.cpu_count() or 1, 8)), n)
        try:
            self._ensure_fleet(fleet_size)
        except OSError as exc:
            raise BackendUnavailable(exc) from exc

        timeout = float(os.environ.get(TIMEOUT_ENV, "0") or 0) or None
        from repro.sim import fastforward

        ff = fastforward.forced_mode()
        self._epoch += 1
        epoch = self._epoch

        results: list = [_UNSET] * n
        pending: deque[int] = deque(range(n))
        attempts = [0] * n
        excluded: list[set[str]] = [set() for _ in range(n)]
        inflight: dict[_Shard, tuple[int, float | None]] = {}
        used: set[str] = set()
        stats = {"crashes": 0, "retries": 0, "timeouts": 0,
                 "workers_used": 0}
        self.last_stats = stats
        completed = 0

        def requeue_from(shard: _Shard, why: str) -> None:
            index, _ = inflight.pop(shard)
            attempts[index] += 1
            excluded[index].add(shard.id)
            if attempts[index] > MAX_RETRIES:
                raise ShardError(
                    f"shards: point {index} {why} {attempts[index]} "
                    f"time(s) (last worker {shard.id}); giving up after "
                    f"{MAX_RETRIES} retries")
            stats["retries"] += 1
            warnings.warn(
                f"shards: worker {shard.id} {why} on point {index}; "
                f"requeueing on another worker "
                f"(attempt {attempts[index] + 1}/{MAX_RETRIES + 1})",
                RuntimeWarning, stacklevel=4)
            pending.appendleft(index)

        while completed < n:
            # Hand every idle worker the first job it is allowed to
            # run.  A fleet kept alive by a wider earlier sweep may
            # hold more daemons than this sweep asked for; the cap
            # keeps --workers an honest concurrency bound.
            active = [s for s in self._fleet if s.alive][:fleet_size]
            for shard in active:
                if shard.busy or not pending:
                    continue
                pick = next((i for i in pending
                             if shard.id not in excluded[i]), None)
                if pick is None:
                    continue
                pending.remove(pick)
                frame = task_frame(f"{epoch}:{pick}", ref, points[pick],
                                   seeds[pick], ff)
                if not shard.send(frame):
                    # Write failure = the worker is gone; its EOF event
                    # will prune it.  The job never left the queue side.
                    pending.appendleft(pick)
                    shard.kill()
                    continue
                shard.busy = True
                used.add(shard.id)
                stats["workers_used"] = len(used)
                deadline = (time.monotonic() + timeout) if timeout else None
                inflight[shard] = (pick, deadline)

            # Liveness: jobs remain but nothing is running and no idle
            # worker may take them (all excluded, or the fleet died).
            # A fresh worker has a fresh id, so it can take anything.
            if pending and not inflight:
                stale_busy = any(s.busy and s.alive for s in self._fleet)
                if not stale_busy:
                    try:
                        self._spawn_one()
                    except OSError as exc:
                        raise BackendUnavailable(exc) from exc
                    continue

            wait = None
            if timeout and inflight:
                armed = [d for _, d in inflight.values() if d is not None]
                if armed:
                    wait = max(0.01, min(armed) - time.monotonic())
            try:
                kind, shard, frame = self._outq.get(timeout=wait)
            except queue.Empty:
                # Per-trial budget exceeded: kill the straggler; the
                # EOF event takes the shared crash/requeue path.
                now = time.monotonic()
                for straggler, (index, deadline) in list(inflight.items()):
                    if deadline is not None and now >= deadline:
                        stats["timeouts"] += 1
                        warnings.warn(
                            f"shards: worker {straggler.id} exceeded the "
                            f"{timeout:g}s per-trial timeout on point "
                            f"{index}; killing it", RuntimeWarning,
                            stacklevel=2)
                        straggler.kill()
                        # Disarm the deadline: the kill fires exactly
                        # once even if the EOF takes a few poll cycles
                        # to arrive; the requeue happens on the EOF.
                        inflight[straggler] = (index, None)
                continue

            if kind == "eof":
                if shard in self._fleet:
                    self._fleet.remove(shard)
                if shard in inflight:
                    stats["crashes"] += 1
                    requeue_from(
                        shard,
                        f"died (exit {shard.proc.poll()!r}) running")
                    try:
                        self._ensure_fleet(fleet_size)
                    except OSError as exc:
                        if not any(s.alive for s in self._fleet):
                            raise BackendUnavailable(exc) from exc
                continue

            op = frame.get("op")
            if op in ("hello", "pong"):
                continue
            shard.busy = False
            task_id = str(frame.get("id", ""))
            prefix, _, index_text = task_id.partition(":")
            if prefix != str(epoch) or not index_text.isdigit():
                continue  # stale frame from an aborted previous sweep
            index = int(index_text)
            if shard in inflight and inflight[shard][0] == index:
                del inflight[shard]
            if results[index] is not _UNSET:
                continue  # duplicate (e.g. raced with a timeout kill)
            if not frame.get("ok"):
                raise_remote(frame)
            if frame.get("ff_totals"):
                fastforward.absorb_totals(frame["ff_totals"])
            value = decode_value(frame["result"])
            results[index] = value
            completed += 1
            if on_result is not None:
                on_result(index, value)

        return results
