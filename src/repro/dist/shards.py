"""Shards backend: a coordinator over long-lived worker daemons.

``get_backend("shards")`` owns a fleet of ``python -m repro worker``
subprocesses (spawned lazily, reused across every sweep in the
process, shut down atexit) and schedules each sweep over them:

* **dispatch** — a job queue of point indices; idle workers pull the
  first compatible job.  Seeds were derived per point index *before*
  dispatch (:func:`repro.exp.runner.derive_seed`), so nothing about
  which worker runs a point — or in what order results land — can
  change the simulation.
* **pipelining** — each worker holds up to :data:`PREFETCH` task
  frames (one running, the rest queued in its stdin pipe, written as
  one batched frame block).  The worker starts its next trial straight
  off the pipe instead of idling through the coordinator's result
  turnaround, which is most of the warm per-trial dispatch cost.
  Crash/timeout blame lands on the *running* (head) task only: queued
  mates are requeued silently at the front of the job queue, with no
  retry charged.
* **crash detection** — a worker whose pipe hits EOF (or whose process
  exits) while a trial is in flight gets that point requeued, with the
  dead worker's id excluded so a respawned sibling takes it.  Retries
  are bounded (:data:`MAX_RETRIES`): a point that keeps killing
  workers raises :class:`ShardError` instead of looping forever.
* **per-trial timeout** — ``REPRO_SHARD_TIMEOUT`` seconds (float,
  unset/0 disables); an overdue worker is killed and handled exactly
  like a crash.
* **result streaming** — completions invoke ``on_result`` as they
  land, which is how :func:`~repro.exp.runner.map_trials` feeds the
  content-addressed result cache trial by trial (a killed sweep
  resumes from cache instead of restarting).
* **trial errors** — a Python exception inside a trial is not a crash:
  the worker ships it back and survives; the coordinator re-raises it
  (original type when picklable) and never retries, matching the pool
  and serial backends.

Workers inherit this process's ``sys.path`` via ``PYTHONPATH`` so the
fleet can execute any trial function the coordinator can import — the
local-machine analogue of shipping the code tree to a remote fleet.

**Transports.**  The coordinator is transport-agnostic: a shard is
anything with ``send``/``send_many``/``kill``/``shutdown``/``alive``/
``ready`` whose frames land on the coordinator's event queue.  Two
transports exist today: :class:`_Shard` (a locally spawned ``repro
worker`` over stdio pipes — the default, and the reference semantics)
and :class:`repro.dist.net.RemoteShard` (a worker that dialed into
the coordinator's TCP :class:`~repro.dist.net.FleetServer` with
``repro worker --connect``).  Remote workers ride the same job queue,
pipelining, crash-requeue, timeout, and retry machinery; the listener
is enabled by the ``REPRO_FLEET_LISTEN`` (+ mandatory
``REPRO_FLEET_SECRET``) environment variables, and
``REPRO_FLEET_SPAWN_LOCAL=0`` runs a remote-only fleet (the
coordinator then waits up to ``REPRO_FLEET_WAIT`` seconds for the
first worker to dial in).

**The handshake.**  No shard receives a single task frame until its
``hello`` has been validated (:func:`repro.dist.protocol.
validate_hello`): matching protocol version and matching source-tree
fingerprint, plus an HMAC shared-secret proof on TCP.  A mismatched
*remote* worker is refused at the listener with a diagnostic naming
the mismatch; a mismatched *locally spawned* worker is a broken
deployment (the coordinator's own spawn disagrees with its own source
tree), so the sweep fails loudly with :class:`~repro.dist.protocol.
HandshakeError` instead of silently simulating divergent physics.
"""

from __future__ import annotations

import os
import queue
import subprocess
import sys
import threading
import time
import warnings
from collections import deque
from typing import Sequence

from repro.dist.base import (
    Backend,
    BackendError,
    BackendUnavailable,
    IN_WORKER_ENV,
)
from repro.dist.protocol import (
    HandshakeError,
    dump_frame,
    decode_value,
    fn_ref,
    parse_frame,
    raise_remote,
    task_frame,
    validate_hello,
)
from repro.obs import trace as _trace
from repro.obs.metrics import REGISTRY as _METRICS

# Coordinator telemetry (process totals; repro_sweep_* gauges reset at
# the start of each run() so they describe the current sweep only).
_DISPATCHED = _METRICS.counter(
    "repro_dist_tasks_dispatched_total",
    "Task frames handed to workers (requeued attempts re-count)")
_REQUEUES = _METRICS.counter(
    "repro_dist_requeues_total",
    "Head tasks requeued after a worker crash or timeout kill")
_CRASHES = _METRICS.counter(
    "repro_dist_crashes_total",
    "Workers that died with tasks in flight")
_TIMEOUTS = _METRICS.counter(
    "repro_dist_timeouts_total",
    "Workers killed for exceeding the per-trial timeout")
_WORKER_TRIALS = _METRICS.counter(
    "repro_dist_worker_trials_total", "Trials completed, per worker")
_ROUNDTRIP = _METRICS.histogram(
    "repro_dist_task_roundtrip_seconds",
    "Dispatch-to-result wall latency per task (includes pipeline "
    "queueing inside the worker)")
_QUEUE_DEPTH = _METRICS.gauge(
    "repro_dist_queue_depth",
    "Trials of the current sweep not yet handed to a worker")
_WORKERS_ACTIVE = _METRICS.gauge(
    "repro_dist_workers_active", "Workers with tasks in flight")
_SWEEP_GAUGES = {
    key: _METRICS.gauge(f"repro_sweep_{key}",
                        f"Current sweep: {help_text}")
    for key, help_text in (
        ("requeues", "crash/timeout requeues"),
        ("crashes", "worker crashes"),
        ("timeouts", "per-trial timeout kills"),
        ("workers_used", "distinct workers that ran a trial"),
        ("ff_jumps", "fast-forward jumps absorbed from workers"),
        ("ff_cycles", "fast-forward jumped cycles absorbed"),
        ("ff_samples", "fast-forward synthesized samples absorbed"),
        ("ff_joint_jumps", "joint fast-forward jumps absorbed"),
    )}

#: Per-trial wall-clock budget in seconds (float; unset/0 disables).
TIMEOUT_ENV = "REPRO_SHARD_TIMEOUT"

#: ``HOST:PORT`` (or bare port) to accept remote workers on; unset
#: keeps the fleet local-only.  Requires :data:`SECRET_ENV`.
LISTEN_ENV = "REPRO_FLEET_LISTEN"

#: Shared secret remote workers must prove knowledge of (HMAC over the
#: challenge nonce; the secret itself never crosses the wire).
SECRET_ENV = "REPRO_FLEET_SECRET"

#: ``0``/``false`` forbids spawning local workers — a remote-only
#: fleet; the coordinator waits for workers to dial in instead.
SPAWN_LOCAL_ENV = "REPRO_FLEET_SPAWN_LOCAL"

#: Seconds a remote-only sweep waits starved (jobs pending, no usable
#: worker) for a remote worker to join before giving up.
WAIT_ENV = "REPRO_FLEET_WAIT"

#: How many times one point may crash a worker before the sweep fails.
MAX_RETRIES = 2

#: Consecutive worker deaths *before* a validated hello that abort the
#: sweep (a worker dying pre-handshake completed no work, so the
#: crash-retry budget never engages — without this bound a broken
#: spawn environment would respawn forever).
MAX_HANDSHAKE_DEATHS = 3

#: Task frames a worker may hold at once (one running plus frames
#: queued in its pipe).  Depth 2 fully hides the coordinator's
#: turnaround latency behind trial execution; deeper queues only delay
#: crash requeues and skew the tail of the sweep.
PREFETCH = 2

_UNSET = object()


class ShardError(RuntimeError):
    """A point exhausted its crash-retry budget."""


class _Shard:
    """One worker subprocess plus its reader thread (stdio transport)."""

    _counter = 0
    remote = False

    def __init__(self, outq: queue.Queue) -> None:
        _Shard._counter += 1
        index = _Shard._counter
        env = dict(os.environ)
        env[IN_WORKER_ENV] = "1"
        # Ship the coordinator's import universe: PYTHONPATH covers the
        # repro checkout and anything else (e.g. a test directory) the
        # parent could import trial functions from.
        env["PYTHONPATH"] = os.pathsep.join(p for p in sys.path if p)
        self.proc = subprocess.Popen(
            [sys.executable, "-m", "repro", "worker"],
            stdin=subprocess.PIPE, stdout=subprocess.PIPE, stderr=None,
            env=env, text=True, encoding="utf-8", bufsize=1)
        self.id = f"shard{index}:pid{self.proc.pid}"
        #: Task frames in this worker's hands (spans run() calls: a
        #: sweep aborted by a trial error can leave a worker finishing
        #: stale tasks; the count drains as their frames arrive).
        self.depth = 0
        #: Trials completed over this worker's lifetime (telemetry).
        self.trials_done = 0
        #: No dispatch until the hello handshake validates (version +
        #: source fingerprint must match the coordinator's).
        self.ready = False
        self.version: object = None
        self.fingerprint: object = None
        self._reader = threading.Thread(
            target=self._read_loop, args=(outq,), daemon=True,
            name=f"repro-{self.id}-reader")
        self._reader.start()

    def _read_loop(self, outq: queue.Queue) -> None:
        try:
            for line in self.proc.stdout:
                frame = parse_frame(line)
                if frame is not None:
                    outq.put(("frame", self, frame))
        except (OSError, ValueError):  # pragma: no cover - pipe teardown
            pass
        outq.put(("eof", self, None))

    @property
    def alive(self) -> bool:
        return self.proc.poll() is None

    def send(self, frame: dict) -> bool:
        try:
            self.proc.stdin.write(dump_frame(frame))
            self.proc.stdin.flush()
            return True
        except (OSError, ValueError):
            return False

    def send_many(self, frames: list[dict]) -> bool:
        """Write a batch of frames as one block with a single flush."""
        try:
            self.proc.stdin.write("".join(map(dump_frame, frames)))
            self.proc.stdin.flush()
            return True
        except (OSError, ValueError):
            return False

    def kill(self) -> None:
        try:
            self.proc.kill()
        except OSError:  # pragma: no cover - already gone
            pass

    def death_detail(self) -> str:
        return f"exit {self.proc.poll()!r}"

    def shutdown(self) -> None:
        if self.alive:
            self.send({"op": "shutdown"})
            try:
                self.proc.stdin.close()
            except OSError:  # pragma: no cover
                pass
            try:
                self.proc.wait(timeout=2.0)
            except subprocess.TimeoutExpired:  # pragma: no cover
                self.kill()
        self.proc.wait()


def _truthy(text: str | None, default: bool) -> bool:
    if text is None or not text.strip():
        return default
    return text.strip().lower() not in ("0", "false", "no", "off")


class ShardsBackend(Backend):
    name = "shards"

    def __init__(self, *, listen: str | None = None,
                 secret: str | None = None,
                 spawn_local: bool | None = None,
                 join_wait: float | None = None) -> None:
        self._outq: queue.Queue = queue.Queue()
        self._fleet: list = []
        self._epoch = 0
        #: Coordinator statistics of the most recent run() (tests and
        #: curious operators; not part of the result contract).
        self.last_stats: dict = {}
        # Fleet (TCP) configuration; constructor arguments win over the
        # environment so tests can build private listening backends.
        listen = listen if listen is not None else os.environ.get(
            LISTEN_ENV, "").strip()
        self._secret = (secret if secret is not None
                        else os.environ.get(SECRET_ENV) or None)
        self._spawn_local = (spawn_local if spawn_local is not None
                             else _truthy(os.environ.get(SPAWN_LOCAL_ENV),
                                          True))
        self._join_wait = (join_wait if join_wait is not None else float(
            os.environ.get(WAIT_ENV, "") or 60.0))
        self.server = None
        if listen:
            from repro.dist.net import FleetServer, parse_hostport

            if not self._secret:
                raise BackendError(
                    f"{LISTEN_ENV} is set but no shared secret is: "
                    f"remote workers authenticate with an HMAC proof, "
                    f"so a listening fleet requires {SECRET_ENV}")
            host, port = parse_hostport(listen)
            try:
                self.server = FleetServer(
                    host, port, secret=self._secret,
                    fingerprint=self._expected_fingerprint(),
                    fleet=self._fleet, outq=self._outq,
                    metrics_source=_METRICS.snapshot)
            except OSError as exc:
                raise BackendError(
                    f"cannot listen on {listen!r}: {exc}") from exc
        elif not self._spawn_local:
            raise BackendError(
                f"{SPAWN_LOCAL_ENV}=0 without {LISTEN_ENV}: a fleet "
                "that neither spawns local workers nor accepts remote "
                "ones could never run a trial")

    @staticmethod
    def _expected_fingerprint() -> str:
        from repro.exp.cache import code_fingerprint

        return code_fingerprint()

    # -- fleet management ------------------------------------------------
    def _spawn_one(self) -> _Shard:
        shard = _Shard(self._outq)
        self._fleet.append(shard)
        return shard

    def _ensure_fleet(self, n: int) -> None:
        self._fleet[:] = [s for s in self._fleet if s.alive]
        if not self._spawn_local:
            return  # remote-only: workers dial in, we never spawn
        while sum(1 for s in self._fleet if s.alive) < n:
            self._spawn_one()

    def close(self) -> None:
        if self.server is not None:
            self.server.close()
        fleet, self._fleet[:] = list(self._fleet), []
        for shard in fleet:
            shard.shutdown()

    # -- the sweep coordinator -------------------------------------------
    def run(self, fn, points: Sequence, seeds: Sequence, *,
            workers: int | None = None, on_result=None) -> list:
        n = len(points)
        if n == 0:
            return []
        ref = fn_ref(fn)
        if ref is None:
            raise BackendUnavailable(
                f"trial function {fn!r} is not addressable as "
                "module:qualname (lambdas and nested functions cannot "
                "be shipped to workers)")
        fleet_size = min(max(1, workers or min(os.cpu_count() or 1, 8)), n)
        try:
            self._ensure_fleet(fleet_size)
        except OSError as exc:
            raise BackendUnavailable(exc) from exc

        timeout = float(os.environ.get(TIMEOUT_ENV, "0") or 0) or None
        from repro.sim import fastforward

        ff = fastforward.forced_mode()
        self._epoch += 1
        epoch = self._epoch

        results: list = [_UNSET] * n
        pending: deque[int] = deque(range(n))
        attempts = [0] * n
        excluded: list[set[str]] = [set() for _ in range(n)]
        #: This sweep's task indices in each worker's hands, dispatch
        #: order (the worker runs them in order, so [0] is the running
        #: head).  Workers with no entries are absent.
        inflight: dict[_Shard, deque[int]] = {}
        #: Armed head-of-line deadline per worker: the running head
        #: task's wall-clock budget.  Queued mates are not on the
        #: clock until they reach the head.
        deadlines: dict[_Shard, float] = {}
        used: set[str] = set()
        stats = {"crashes": 0, "retries": 0, "timeouts": 0,
                 "workers_used": 0, "remote_workers_used": 0,
                 "worker_trials": {},
                 "ff_totals": {k: 0 for k in fastforward.totals()}}
        self.last_stats = stats
        completed = 0
        # Per-sweep telemetry baseline: the repro_sweep_* gauges
        # describe *this* run() only, so they reset here rather than
        # accumulate across sweeps (the repro_dist_* counters are the
        # process-lifetime totals).
        for gauge in _SWEEP_GAUGES.values():
            gauge.set(0)
        _QUEUE_DEPTH.set(n)
        _WORKERS_ACTIVE.set(0)
        #: Dispatch timestamps of in-flight tasks (monotonic), for the
        #: roundtrip histogram; dropped on requeue so a retried task
        #: times its final attempt only.
        send_ts: dict[int, float] = {}
        #: Consecutive deaths of never-validated workers (see
        #: MAX_HANDSHAKE_DEATHS); reset by any successful hello.
        handshake_deaths = 0
        #: When a remote-only fleet first found itself starved (jobs
        #: pending, nothing running, nobody to dispatch to).
        starved_at: float | None = None

        def requeue_from(shard: _Shard, why: str) -> None:
            entries = inflight.pop(shard)
            deadlines.pop(shard, None)
            _WORKERS_ACTIVE.set(len(inflight))
            head = entries.popleft()
            # Queued mates never started: back to the front of the
            # queue, no blame, no retry charged.
            for mate in reversed(entries):
                pending.appendleft(mate)
                send_ts.pop(mate, None)
                if _trace.active():
                    _trace.emit("requeued", _trace.trial_label(mate),
                                worker=shard.id, attempt=attempts[mate],
                                why="mate")
            send_ts.pop(head, None)
            attempts[head] += 1
            excluded[head].add(shard.id)
            if attempts[head] > MAX_RETRIES:
                raise ShardError(
                    f"shards: point {head} {why} {attempts[head]} "
                    f"time(s) (last worker {shard.id}); giving up after "
                    f"{MAX_RETRIES} retries")
            stats["retries"] += 1
            _REQUEUES.inc()
            _SWEEP_GAUGES["requeues"].inc()
            if _trace.active():
                _trace.emit("requeued", _trace.trial_label(head),
                            worker=shard.id, attempt=attempts[head],
                            why=why)
            warnings.warn(
                f"shards: worker {shard.id} {why} on point {head}; "
                f"requeueing on another worker "
                f"(attempt {attempts[head] + 1}/{MAX_RETRIES + 1})",
                RuntimeWarning, stacklevel=4)
            pending.appendleft(head)
            _QUEUE_DEPTH.set(len(pending))

        while completed < n:
            # Fill every worker's pipeline with the first jobs it is
            # allowed to run, batching the frames into one write.  A
            # fleet kept alive by a wider earlier sweep may hold more
            # daemons than this sweep asked for; the cap keeps
            # --workers an honest concurrency bound.  Only validated
            # workers are dispatchable: a shard whose hello has not
            # cleared the version/fingerprint handshake gets nothing.
            active = [s for s in self._fleet
                      if s.alive and s.ready][:fleet_size]
            for shard in active:
                if shard.depth >= PREFETCH or not pending:
                    continue
                was_idle = shard.depth == 0
                picked: list[int] = []
                frames: list[dict] = []
                while shard.depth + len(picked) < PREFETCH:
                    pick = next((i for i in pending
                                 if shard.id not in excluded[i]), None)
                    if pick is None:
                        break
                    pending.remove(pick)
                    picked.append(pick)
                    frames.append(
                        task_frame(f"{epoch}:{pick}", ref, points[pick],
                                   seeds[pick], ff))
                if not picked:
                    continue
                if not shard.send_many(frames):
                    # Write failure = the worker is gone; its EOF event
                    # will prune it.  The jobs never left the queue side.
                    for pick in reversed(picked):
                        pending.appendleft(pick)
                    shard.kill()
                    continue
                entries = inflight.get(shard)
                if entries is None:
                    entries = inflight[shard] = deque()
                entries.extend(picked)
                shard.depth += len(picked)
                sent_at = time.monotonic()
                for pick in picked:
                    send_ts[pick] = sent_at
                _DISPATCHED.inc(len(picked))
                _QUEUE_DEPTH.set(len(pending))
                _WORKERS_ACTIVE.set(len(inflight))
                if _trace.active():
                    for pick in picked:
                        _trace.emit("dispatched",
                                    _trace.trial_label(pick),
                                    worker=shard.id,
                                    attempt=attempts[pick] + 1)
                used.add(shard.id)
                stats["workers_used"] = len(used)
                _SWEEP_GAUGES["workers_used"].set(len(used))
                if shard.remote:
                    stats["remote_workers_used"] = sum(
                        1 for wid in used if wid.startswith("tcp:"))
                if timeout and was_idle:
                    # The head starts immediately; mates queue behind
                    # it and get their deadline when they reach the
                    # head (a stale-busy worker arms on the stale
                    # task's completion frame instead).
                    deadlines[shard] = time.monotonic() + timeout

            # Liveness: jobs remain but nothing is running and no idle
            # worker may take them (all excluded, or the fleet died).
            # A fresh worker has a fresh id, so it can take anything.
            # A shard still awaiting its hello will become usable
            # without any action, so starvation only counts when no
            # handshake is in flight either.
            starving = False
            if pending and not inflight:
                stale_busy = any(s.depth and s.alive for s in self._fleet)
                awaiting_hello = any(s.alive and not s.ready
                                     for s in self._fleet)
                if not stale_busy and not awaiting_hello:
                    if self._spawn_local:
                        try:
                            self._spawn_one()
                        except OSError as exc:
                            raise BackendUnavailable(exc) from exc
                        continue
                    # Remote-only: wait (bounded) for a worker to dial
                    # into the listener.
                    starving = True
                    now = time.monotonic()
                    if starved_at is None:
                        starved_at = now
                    elif now - starved_at >= self._join_wait:
                        where = (self.server.address if self.server
                                 else "<no listener>")
                        raise BackendUnavailable(
                            f"no authenticated remote worker joined "
                            f"within {self._join_wait:g}s (listening "
                            f"on {where}; {len(pending)} trial(s) "
                            f"still pending)")
            if not starving:
                starved_at = None

            wait = None
            if timeout and deadlines:
                wait = max(0.01,
                           min(deadlines.values()) - time.monotonic())
            if starved_at is not None:
                remaining = max(
                    0.01, starved_at + self._join_wait - time.monotonic())
                wait = remaining if wait is None else min(wait, remaining)
            try:
                kind, shard, frame = self._outq.get(timeout=wait)
            except queue.Empty:
                # Per-trial budget exceeded: kill the straggler; the
                # EOF event takes the shared crash/requeue path.
                now = time.monotonic()
                for straggler, deadline in list(deadlines.items()):
                    if now >= deadline:
                        stats["timeouts"] += 1
                        _TIMEOUTS.inc()
                        _SWEEP_GAUGES["timeouts"].inc()
                        warnings.warn(
                            f"shards: worker {straggler.id} exceeded "
                            f"the {timeout:g}s per-trial timeout on "
                            f"point {inflight[straggler][0]}; killing "
                            f"it", RuntimeWarning, stacklevel=2)
                        straggler.kill()
                        # Disarm the deadline: the kill fires exactly
                        # once even if the EOF takes a few poll cycles
                        # to arrive; the requeue happens on the EOF.
                        del deadlines[straggler]
                continue

            if kind == "join":
                # A remote worker passed the listener's handshake and
                # joined the fleet; loop back to dispatch to it.
                continue

            if kind == "eof":
                # A shard we already evicted (refused hello, killed in
                # a previous sweep) reports a stale EOF: pure noise,
                # never evidence about this sweep's spawn environment.
                was_ours = shard in self._fleet
                if was_ours:
                    self._fleet.remove(shard)
                if was_ours and not shard.ready:
                    # Died before its hello ever validated: it never
                    # held a task, so the retry budget cannot bound a
                    # spawn environment that kills every worker.
                    handshake_deaths += 1
                    if (self._spawn_local
                            and handshake_deaths >= MAX_HANDSHAKE_DEATHS):
                        raise BackendUnavailable(
                            f"{handshake_deaths} consecutive workers "
                            f"died before completing the hello "
                            f"handshake (last: {shard.id}, "
                            f"{shard.death_detail()})")
                if shard in inflight:
                    stats["crashes"] += 1
                    _CRASHES.inc()
                    _SWEEP_GAUGES["crashes"].inc()
                    requeue_from(
                        shard,
                        f"died ({shard.death_detail()}) running")
                    try:
                        self._ensure_fleet(fleet_size)
                    except OSError as exc:
                        if not any(s.alive for s in self._fleet):
                            raise BackendUnavailable(exc) from exc
                continue

            op = frame.get("op")
            if op == "pong":
                continue
            if op == "hello":
                # Local stdio transport only: remote hellos are
                # consumed (and validated) by the FleetServer before a
                # RemoteShard exists.  A mismatch here means our own
                # spawn runs different code than this process — refuse
                # the worker and fail the sweep loudly rather than let
                # it poison a bit-identity-pinned sweep.
                if shard not in self._fleet:
                    continue  # stale hello from an already-evicted worker
                reason = validate_hello(
                    frame, fingerprint=self._expected_fingerprint())
                if reason is not None:
                    # The whole unvalidated spawn batch came from the
                    # same broken environment: kill it all, or a
                    # sibling's pending hello would poison the next
                    # sweep after the environment is fixed.
                    doomed = [s for s in self._fleet
                              if s is shard or (not s.remote
                                                and not s.ready)]
                    for sibling in doomed:
                        sibling.kill()
                        self._fleet.remove(sibling)
                    raise HandshakeError(
                        f"refusing locally spawned worker {shard.id}: "
                        f"{reason}")
                shard.ready = True
                shard.version = frame.get("version")
                shard.fingerprint = frame.get("fingerprint")
                handshake_deaths = 0
                continue
            shard.depth = max(0, shard.depth - 1)
            task_id = str(frame.get("id", ""))
            prefix, _, index_text = task_id.partition(":")
            entries = inflight.get(shard)
            if prefix != str(epoch) or not index_text.isdigit():
                # Stale frame from an aborted previous sweep: the
                # worker now starts this sweep's head, if it has one.
                if timeout and entries:
                    deadlines[shard] = time.monotonic() + timeout
                continue
            index = int(index_text)
            if entries and entries[0] == index:
                entries.popleft()
                if entries:
                    if timeout:
                        # The queued mate is now the running head.
                        deadlines[shard] = time.monotonic() + timeout
                else:
                    del inflight[shard]
                    deadlines.pop(shard, None)
                    _WORKERS_ACTIVE.set(len(inflight))
            if results[index] is not _UNSET:
                continue  # duplicate (e.g. raced with a timeout kill)
            if not frame.get("ok"):
                raise_remote(frame)
            sent_at = send_ts.pop(index, None)
            if sent_at is not None:
                _ROUNDTRIP.observe(time.monotonic() - sent_at)
            shard.trials_done += 1
            _WORKER_TRIALS.inc(worker=shard.id)
            stats["worker_trials"][shard.id] = (
                stats["worker_trials"].get(shard.id, 0) + 1)
            if _trace.active():
                span = frame.get("span")
                label = _trace.trial_label(index)
                if (isinstance(span, (list, tuple)) and len(span) == 2):
                    _trace.emit("running", label, worker=shard.id,
                                attempt=attempts[index] + 1,
                                start=span[0], end=span[1])
            worker_totals = frame.get("ff_totals")
            if worker_totals:
                fastforward.absorb_totals(worker_totals)
                # Per-sweep engagement evidence: last_stats reports
                # only this run()'s totals, while the process-wide
                # fastforward totals keep accumulating across sweeps.
                sweep_totals = stats["ff_totals"]
                for key, value in worker_totals.items():
                    if key in sweep_totals:
                        sweep_totals[key] += value
                        gauge = _SWEEP_GAUGES.get(f"ff_{key}")
                        if gauge is not None:
                            gauge.set(sweep_totals[key])
            counters = frame.get("m")
            if counters:
                # Fold the worker's engine-event delta into this
                # process's totals so the registry's engine collector
                # sees sharded work too.
                from repro.sim import engine

                engine.absorb_counters(counters)
            value = decode_value(frame["result"])
            results[index] = value
            completed += 1
            if on_result is not None:
                on_result(index, value)

        _QUEUE_DEPTH.set(0)
        _WORKERS_ACTIVE.set(0)
        return results
