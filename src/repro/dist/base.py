"""Execution-backend protocol and registry.

A *backend* is the thing that actually runs a sweep's trials:
``serial`` executes them in-process, ``pool`` fans them out over a
:class:`~concurrent.futures.ProcessPoolExecutor`, and ``shards``
dispatches them to long-lived ``python -m repro worker`` daemons over
newline-delimited JSON.  Every backend honors the same contract, which
is the whole point of the subsystem:

* trials are **pure data** — a module-level function reference plus a
  JSON-round-trippable point (and an optional pre-derived seed);
* results come back **in point order** and are **bit-identical to the
  serial path**, because each trial is an isolated, deterministic
  simulation and seeds are assigned by point index, never by worker
  placement;
* a backend that cannot run (no fork, spawn failure, unaddressable
  trial function) raises :class:`BackendUnavailable`, and the caller
  (:func:`repro.exp.runner.map_trials`) falls back to serial with a
  warning naming the backend and the exception.

Backends register lazily so importing :mod:`repro.dist` stays cheap;
``get_backend`` instantiates on first use and caches the instance, so
a backend with expensive state (the shards fleet) amortizes it across
every sweep in the process.
"""

from __future__ import annotations

import abc
import atexit
import importlib
import os
from typing import Callable, Sequence

#: Environment variable selecting the default backend (the ``--backend``
#: CLI flag takes precedence; see :func:`resolve_backend_name`).
BACKEND_ENV = "REPRO_BACKEND"

#: Set in worker processes; forces nested ``map_trials`` calls to the
#: serial backend so a shipped trial can never recursively spawn fleets.
IN_WORKER_ENV = "REPRO_IN_WORKER"

#: The placement heuristic name: ``pool`` for multi-worker sweeps,
#: ``serial`` otherwise (exactly the pre-backend behavior).
AUTO = "auto"


class BackendError(ValueError):
    """Unknown backend name or invalid backend configuration."""


class BackendUnavailable(RuntimeError):
    """A backend cannot run here; the caller should fall back to serial.

    Carries the underlying reason (an exception or a string) so the
    fallback warning can say *why* the backend was unusable.
    """

    def __init__(self, reason: object) -> None:
        super().__init__(str(reason))
        self.reason = reason


class Backend(abc.ABC):
    """One way of executing a list of independent trials.

    Subclasses implement :meth:`run`; everything above the backend
    (seed derivation, caching, fallback, progress) lives in
    :func:`repro.exp.runner.map_trials` so backends stay small.
    """

    #: Registry name (also what ``--backend`` and ``REPRO_BACKEND`` use).
    name: str = "?"

    @abc.abstractmethod
    def run(self, fn: Callable, points: Sequence, seeds: Sequence, *,
            workers: int | None = None,
            on_result: Callable[[int, object], None] | None = None) -> list:
        """Execute ``fn`` over every point; results in point order.

        ``seeds[i]`` is the pre-derived per-trial seed of ``points[i]``
        (``None`` for unseeded trials) — backends never derive seeds
        themselves, which is what keeps results independent of worker
        placement.  ``on_result(i, value)`` is invoked as each result
        lands (possibly out of point order) so the caller can stream
        results into the on-disk cache and drive progress reporting.

        A trial exception propagates unchanged.  Backend-machinery
        failure raises :class:`BackendUnavailable` instead.
        """

    def close(self) -> None:
        """Release backend resources (worker fleets, pools)."""


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------
#: Lazy factories: name -> "module:ClassName" (or a Backend subclass
#: registered at runtime via register_backend).
_FACTORIES: dict[str, str | type] = {
    "serial": "repro.dist.serial:SerialBackend",
    "pool": "repro.dist.pool:PoolBackend",
    "shards": "repro.dist.shards:ShardsBackend",
}

_instances: dict[str, Backend] = {}


def register_backend(name: str, factory: str | type) -> None:
    """Register a backend under ``name``.

    ``factory`` is a Backend subclass or a ``"module:ClassName"``
    string (resolved lazily on first :func:`get_backend`).
    """
    if not name or name == AUTO:
        raise BackendError(f"invalid backend name {name!r}")
    _FACTORIES[name] = factory
    _instances.pop(name, None)


def unregister_backend(name: str) -> None:
    """Remove a runtime-registered backend (test hygiene)."""
    instance = _instances.pop(name, None)
    if instance is not None:
        instance.close()
    _FACTORIES.pop(name, None)


def backend_names() -> list[str]:
    """Sorted names of every registered backend."""
    return sorted(_FACTORIES)


def check_backend_name(name: str) -> str:
    """Validate a user-supplied backend name (``auto`` allowed)."""
    if name == AUTO or name in _FACTORIES:
        return name
    raise BackendError(
        f"unknown backend {name!r}; known backends: "
        f"{', '.join([AUTO] + backend_names())}")


def get_backend(name: str) -> Backend:
    """Resolve ``name`` to its (cached) backend instance."""
    instance = _instances.get(name)
    if instance is not None:
        return instance
    factory = _FACTORIES.get(name)
    if factory is None:
        raise BackendError(
            f"unknown backend {name!r}; known backends: "
            f"{', '.join(backend_names())}")
    if isinstance(factory, str):
        module_name, _, class_name = factory.partition(":")
        factory = getattr(importlib.import_module(module_name), class_name)
    instance = factory()
    _instances[name] = instance
    return instance


def shutdown_backends() -> None:
    """Close every instantiated backend (atexit + test teardown)."""
    while _instances:
        _, instance = _instances.popitem()
        try:
            instance.close()
        except Exception:  # pragma: no cover - best-effort teardown
            pass


atexit.register(shutdown_backends)


def install_signal_shutdown() -> None:
    """Make SIGTERM exit through the normal teardown path.

    The default SIGTERM disposition kills the process without running
    ``finally`` blocks or atexit hooks, which would orphan a shards
    worker fleet mid-sweep.  This handler raises ``SystemExit(128 +
    signum)`` instead -- the conventional "terminated by signal" exit
    code -- so the interpreter unwinds, :func:`shutdown_backends`
    drains/kills every worker daemon, and ``kill -TERM`` on the
    coordinator leaves no orphans.  (SIGINT already unwinds as
    ``KeyboardInterrupt``; callers decide its exit code.)

    No-op where signal handlers cannot be installed (non-main thread,
    platforms without SIGTERM).
    """
    import signal

    def on_term(signum, frame):
        raise SystemExit(128 + signum)

    try:
        signal.signal(signal.SIGTERM, on_term)
    except (ValueError, AttributeError, OSError):  # pragma: no cover
        pass  # non-main thread / exotic platform: keep the default


def resolve_backend_name(explicit: str | None = None, *,
                         workers: int | None = None,
                         n_points: int | None = None) -> str:
    """Pick the backend for one sweep.

    Precedence: inside a worker process everything is serial (a shipped
    trial must never spawn its own fleet); otherwise an explicit name
    (``--backend`` / ``map_trials(backend=...)`` / execution context)
    wins over the ``REPRO_BACKEND`` environment variable, which wins
    over the ``auto`` heuristic — ``pool`` when the sweep asks for
    multiple workers over multiple points, ``serial`` otherwise.
    """
    if os.environ.get(IN_WORKER_ENV):
        return "serial"
    name = explicit or os.environ.get(BACKEND_ENV, "").strip() or AUTO
    name = check_backend_name(name)
    if name != AUTO:
        return name
    parallel = (workers is not None and workers > 1
                and (n_points is None or n_points > 1))
    return "pool" if parallel else "serial"
