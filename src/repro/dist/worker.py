"""``python -m repro worker`` — a long-lived sweep-worker daemon.

Two transports feed it task frames (protocol in
:mod:`repro.dist.protocol`):

* **stdio** (default): the shards backend spawns one of these per
  worker slot; frames arrive on stdin and results leave on stdout.
* **TCP** (``--connect HOST:PORT``): the worker *dials into* a
  coordinator's fleet listener — possibly on another machine — and
  authenticates with the shared secret in ``REPRO_FLEET_SECRET``
  (an HMAC proof over the coordinator's challenge nonce; the secret
  never crosses the wire).  The coordinator must prove knowledge of
  the same secret back, and no task frame (which may carry pickles)
  is decoded until that mutual handshake completes.  A refusal —
  wrong secret, protocol-version skew, source-fingerprint skew — is
  printed with the coordinator's diagnostic and exits with code 77;
  it is permanent, so it is never retried.  Plain connection failures
  retry (``--retry`` seconds; ``--reconnect`` additionally re-dials
  after a served session ends, turning the worker into a standing
  fleet member that survives coordinator restarts).

A worker imports the simulator once and then executes trials until
told to shut down (or its transport closes), so a thousand-trial sweep
pays interpreter startup, imports, and warmup once per worker instead
of once per task.

Hygiene the daemon guarantees:

* on stdio, the protocol stream is a private dup of stdout taken at
  startup; file descriptor 1 is then redirected to stderr, so a trial
  that prints cannot corrupt the wire (on TCP the wire is the socket,
  which no ``print`` can reach — stdout is left alone);
* ``REPRO_IN_WORKER`` is set, so a trial that itself calls
  ``map_trials`` resolves to the serial backend instead of recursively
  spawning fleets;
* trials run with the cyclic GC paused (the tuned-CLI condition); a
  cheap young-generation collection after each trial picks up the
  per-trial cycles, with a full collection every
  :data:`GC_FULL_EVERY` tasks to bound old-generation drift (a full
  pass in a warm worker costs more than a no-op trial's entire
  dispatch, so paying it per task dominated warm dispatch overhead);
* each task's ``ff`` field re-applies the coordinator's fast-forward
  forced mode, so differential checks stay meaningful through remote
  execution;
* a trial exception is shipped back as an error frame (with the
  original exception object when picklable) — the worker survives and
  takes the next task.  Only a corrupt protocol line kills the worker.
"""

from __future__ import annotations

import argparse
import gc
import os
import sys
import time
import traceback

from repro.dist.base import IN_WORKER_ENV
from repro.dist.protocol import (
    HandshakeError,
    decode_value,
    dump_frame,
    error_frame,
    hello_frame,
    parse_frame,
    resolve_fn,
)

#: Tasks between full garbage collections (young-generation passes run
#: after every task and are near-free; a full pass is ~ms in a warm
#: worker, so amortizing it keeps per-trial dispatch overhead low).
GC_FULL_EVERY = 32

#: Exit codes: refusal by the coordinator (permanent handshake
#: failure) and transport unavailability (connect retries exhausted).
EX_REFUSED = 77
EX_UNAVAILABLE = 69


def _warm() -> None:
    """Best-effort preload of the heavy sweep modules, so the first
    trial doesn't pay the import bill inside its measured wall time."""
    for name in ("repro.system", "repro.scenario.spec",
                 "repro.core.prac_channel", "repro.core.rfm_channel",
                 "repro.exp.drivers.common"):
        try:
            __import__(name)
        except Exception:  # pragma: no cover - warmup must never kill us
            pass


def _claim_protocol_stream():
    """Dup the real stdout for frames, then point fd 1 at stderr so any
    stray ``print`` inside a trial lands in the log, not the protocol."""
    sys.stdout.flush()
    proto = os.fdopen(os.dup(sys.stdout.fileno()), "w", buffering=1,
                      encoding="utf-8", newline="\n")
    os.dup2(sys.stderr.fileno(), sys.stdout.fileno())
    return proto


def _run_task(frame: dict) -> dict:
    from repro.sim import engine, fastforward

    from repro.dist.protocol import encode_value

    task_id = frame.get("id", "?")
    before = fastforward.totals()
    before_ev = engine.global_counters()
    started = time.time()
    try:
        fn = resolve_fn(frame["fn"])
        point = decode_value(frame["point"])
        seed = frame.get("seed")
        with fastforward.forced(frame.get("ff")):
            value = fn(point) if seed is None else fn(point, seed)
        ended = time.time()
        # Encoding inside the try: a result that is neither JSON-exact
        # nor picklable is a *trial* failure frame, not a daemon death.
        encoded = encode_value(value)
    except Exception as exc:
        return error_frame(task_id, exc, traceback.format_exc())
    # The execution span (wall clock) and this trial's engine-counter
    # delta ride home with the result; the coordinator stitches the
    # span into the lifecycle trace and absorbs the counters into its
    # own telemetry registry.  Old coordinators ignore the extra keys.
    reply = {"id": task_id, "ok": True, "result": encoded,
             "span": [started, ended]}
    after = fastforward.totals()
    delta = {k: after[k] - before[k] for k in after if after[k] != before[k]}
    if delta:
        # Engagement evidence rides home with the result (see
        # fastforward.absorb_totals).
        reply["ff_totals"] = delta
    after_ev = engine.global_counters()
    ev_delta = {k: after_ev[k] - before_ev[k] for k in after_ev
                if after_ev[k] != before_ev[k]}
    if ev_delta:
        reply["m"] = ev_delta
    return reply


def _serve(instream, proto) -> int:
    """The task loop, transport-agnostic: read frames from
    ``instream``, write replies to ``proto``, until shutdown or EOF.
    Returns the process exit code (0 = clean end of session)."""
    gc.disable()
    tasks_since_full_gc = 0
    try:
        for line in instream:
            frame = parse_frame(line)
            if frame is None:
                if line.strip():
                    print(f"worker: unparseable frame {line!r}",
                          file=sys.stderr)
                    return 70  # EX_SOFTWARE: protocol corruption
                continue
            op = frame.get("op", "run")
            if op == "shutdown":
                break
            if op == "ping":
                proto.write(dump_frame({"op": "pong",
                                        "id": frame.get("id")}))
                continue
            if op != "run":
                print(f"worker: unknown op {op!r}", file=sys.stderr)
                continue
            reply = _run_task(frame)
            tasks_since_full_gc += 1
            if tasks_since_full_gc >= GC_FULL_EVERY:
                tasks_since_full_gc = 0
                gc.collect()
            else:
                gc.collect(1)
            try:
                proto.write(dump_frame(reply))
            except (TypeError, ValueError):
                # encode_value produced something json.dumps rejects
                # (should be impossible; pickled fallback is a string).
                exc = RuntimeError(f"unencodable result for {frame['id']}")
                proto.write(dump_frame(error_frame(
                    frame.get("id", "?"), exc, "")))
    except (BrokenPipeError, KeyboardInterrupt):  # pragma: no cover
        return 0
    finally:
        gc.enable()
    return 0


def _fingerprint() -> str:
    from repro.exp.cache import code_fingerprint

    return code_fingerprint()


def _connect_main(target: str, *, reconnect: bool, retry_for: float,
                  warm: bool) -> int:
    """Dial a coordinator and serve tasks over the socket."""
    from repro.dist.net import connect_worker, parse_hostport

    secret = os.environ.get("REPRO_FLEET_SECRET")
    if not secret:
        print("worker: --connect requires the shared secret in "
              "REPRO_FLEET_SECRET (never passed on the command line)",
              file=sys.stderr)
        return 2
    try:
        host, port = parse_hostport(target)
    except ValueError as exc:
        print(f"worker: {exc}", file=sys.stderr)
        return 2
    if warm:
        _warm()
    fingerprint = _fingerprint()
    while True:
        try:
            sock, rfile, wfile = connect_worker(
                host, port, secret=secret, fingerprint=fingerprint,
                retry_for=None if reconnect else retry_for)
        except HandshakeError as exc:
            # Permanent: wrong secret or a skewed tree will not heal
            # by retrying.  The message names the mismatch.
            print(f"worker: {exc}", file=sys.stderr)
            return EX_REFUSED
        except OSError as exc:
            print(f"worker: cannot reach coordinator {host}:{port} "
                  f"after {retry_for:g}s: {exc}", file=sys.stderr)
            return EX_UNAVAILABLE
        print(f"worker: joined fleet at {host}:{port} "
              f"(pid {os.getpid()})", file=sys.stderr)
        try:
            code = _serve(rfile, wfile)
        except OSError:
            code = 0  # connection dropped mid-session: a clean EOF
        finally:
            try:
                sock.close()
            except OSError:  # pragma: no cover
                pass
        if code != 0 or not reconnect:
            return code
        print(f"worker: session ended; redialing {host}:{port} ...",
              file=sys.stderr)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro worker",
        description="sweep-worker daemon: executes NDJSON task frames "
                    "from a shards coordinator, over stdin/stdout "
                    "(spawned by the backend) or a TCP connection "
                    "(--connect; authenticates with "
                    "$REPRO_FLEET_SECRET)")
    parser.add_argument("--no-warm", action="store_true",
                        help="skip preloading the simulator modules")
    parser.add_argument("--connect", metavar="HOST:PORT", default=None,
                        help="dial into a fleet coordinator instead of "
                             "serving stdin (shared secret read from "
                             "REPRO_FLEET_SECRET)")
    parser.add_argument("--reconnect", action="store_true",
                        help="with --connect: redial forever after a "
                             "session ends (a standing fleet member); "
                             "a handshake refusal still exits")
    parser.add_argument("--retry", type=float, default=60.0,
                        metavar="SECONDS",
                        help="with --connect: keep retrying the initial "
                             "connection this long (default: 60)")
    args = parser.parse_args(argv)

    os.environ[IN_WORKER_ENV] = "1"
    if args.connect:
        return _connect_main(args.connect, reconnect=args.reconnect,
                             retry_for=args.retry, warm=not args.no_warm)

    proto = _claim_protocol_stream()
    if not args.no_warm:
        _warm()
    proto.write(dump_frame(hello_frame(_fingerprint())))
    return _serve(sys.stdin, proto)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
