"""``python -m repro worker`` — a long-lived sweep-worker daemon.

The shards backend spawns one of these per worker slot and feeds it
task frames over stdin; results go back over stdout (protocol in
:mod:`repro.dist.protocol`).  A worker imports the simulator once and
then executes trials until told to shut down (or its pipe closes), so
a thousand-trial sweep pays interpreter startup, imports, and warmup
once per worker instead of once per task.

Hygiene the daemon guarantees:

* the protocol stream is a private dup of stdout taken at startup;
  file descriptor 1 is then redirected to stderr, so a trial that
  prints cannot corrupt the wire;
* ``REPRO_IN_WORKER`` is set, so a trial that itself calls
  ``map_trials`` resolves to the serial backend instead of recursively
  spawning fleets;
* trials run with the cyclic GC paused (the tuned-CLI condition); a
  cheap young-generation collection after each trial picks up the
  per-trial cycles, with a full collection every
  :data:`GC_FULL_EVERY` tasks to bound old-generation drift (a full
  pass in a warm worker costs more than a no-op trial's entire
  dispatch, so paying it per task dominated warm dispatch overhead);
* each task's ``ff`` field re-applies the coordinator's fast-forward
  forced mode, so differential checks stay meaningful through remote
  execution;
* a trial exception is shipped back as an error frame (with the
  original exception object when picklable) — the worker survives and
  takes the next task.  Only a corrupt protocol line kills the worker.
"""

from __future__ import annotations

import argparse
import gc
import os
import sys
import traceback

from repro.dist.base import IN_WORKER_ENV
from repro.dist.protocol import (
    PROTOCOL_VERSION,
    decode_value,
    dump_frame,
    error_frame,
    parse_frame,
    resolve_fn,
)

#: Tasks between full garbage collections (young-generation passes run
#: after every task and are near-free; a full pass is ~ms in a warm
#: worker, so amortizing it keeps per-trial dispatch overhead low).
GC_FULL_EVERY = 32


def _warm() -> None:
    """Best-effort preload of the heavy sweep modules, so the first
    trial doesn't pay the import bill inside its measured wall time."""
    for name in ("repro.system", "repro.scenario.spec",
                 "repro.core.prac_channel", "repro.core.rfm_channel",
                 "repro.exp.drivers.common"):
        try:
            __import__(name)
        except Exception:  # pragma: no cover - warmup must never kill us
            pass


def _claim_protocol_stream():
    """Dup the real stdout for frames, then point fd 1 at stderr so any
    stray ``print`` inside a trial lands in the log, not the protocol."""
    sys.stdout.flush()
    proto = os.fdopen(os.dup(sys.stdout.fileno()), "w", buffering=1,
                      encoding="utf-8", newline="\n")
    os.dup2(sys.stderr.fileno(), sys.stdout.fileno())
    return proto


def _run_task(frame: dict) -> dict:
    from repro.sim import fastforward

    from repro.dist.protocol import encode_value

    task_id = frame.get("id", "?")
    before = fastforward.totals()
    try:
        fn = resolve_fn(frame["fn"])
        point = decode_value(frame["point"])
        seed = frame.get("seed")
        with fastforward.forced(frame.get("ff")):
            value = fn(point) if seed is None else fn(point, seed)
        # Encoding inside the try: a result that is neither JSON-exact
        # nor picklable is a *trial* failure frame, not a daemon death.
        encoded = encode_value(value)
    except Exception as exc:
        return error_frame(task_id, exc, traceback.format_exc())
    reply = {"id": task_id, "ok": True, "result": encoded}
    after = fastforward.totals()
    delta = {k: after[k] - before[k] for k in after if after[k] != before[k]}
    if delta:
        # Engagement evidence rides home with the result (see
        # fastforward.absorb_totals).
        reply["ff_totals"] = delta
    return reply


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro worker",
        description="sweep-worker daemon: reads NDJSON task frames on "
                    "stdin, writes result frames on stdout (internal; "
                    "spawned by the shards backend)")
    parser.add_argument("--no-warm", action="store_true",
                        help="skip preloading the simulator modules")
    args = parser.parse_args(argv)

    os.environ[IN_WORKER_ENV] = "1"
    proto = _claim_protocol_stream()
    if not args.no_warm:
        _warm()
    proto.write(dump_frame({"op": "hello", "pid": os.getpid(),
                            "version": PROTOCOL_VERSION}))

    gc.disable()
    tasks_since_full_gc = 0
    try:
        for line in sys.stdin:
            frame = parse_frame(line)
            if frame is None:
                if line.strip():
                    print(f"worker: unparseable frame {line!r}",
                          file=sys.stderr)
                    return 70  # EX_SOFTWARE: protocol corruption
                continue
            op = frame.get("op", "run")
            if op == "shutdown":
                break
            if op == "ping":
                proto.write(dump_frame({"op": "pong",
                                        "id": frame.get("id")}))
                continue
            if op != "run":
                print(f"worker: unknown op {op!r}", file=sys.stderr)
                continue
            reply = _run_task(frame)
            tasks_since_full_gc += 1
            if tasks_since_full_gc >= GC_FULL_EVERY:
                tasks_since_full_gc = 0
                gc.collect()
            else:
                gc.collect(1)
            try:
                proto.write(dump_frame(reply))
            except (TypeError, ValueError):
                # encode_value produced something json.dumps rejects
                # (should be impossible; pickled fallback is a string).
                exc = RuntimeError(f"unencodable result for {frame['id']}")
                proto.write(dump_frame(error_frame(
                    frame.get("id", "?"), exc, "")))
    except (BrokenPipeError, KeyboardInterrupt):  # pragma: no cover
        return 0
    finally:
        gc.enable()
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
