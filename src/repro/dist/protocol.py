"""Wire protocol shared by the sweep coordinator and its workers.

Frames are newline-delimited JSON objects — one frame per line, UTF-8,
no embedded newlines.  Coordinator -> worker::

    {"op": "challenge", "nonce": "<hex>", "version": 2}   (TCP only)
    {"op": "welcome", "auth": "<hmac-hex>"}               (TCP only)
    {"op": "refused", "error": "..."}                     (TCP only)
    {"op": "run", "id": "3:17", "fn": "pkg.mod:trial",
     "point": {...}, "seed": 123 | null, "ff": "off" | "on" | null}
    {"op": "ping", "id": "..."}
    {"op": "shutdown"}

Worker -> coordinator::

    {"op": "hello", "pid": 4242, "version": 2,
     "fingerprint": "<sha256>", "nonce": "<hex>", "auth": "<hmac-hex>"}
    {"op": "pong", "id": "..."}
    {"id": "3:17", "ok": true,  "result": <value>}
    {"id": "3:17", "ok": false, "error": <value>, "exc": "ValueError(...)",
     "traceback": "..."}

**The handshake.**  Every worker opens with a ``hello`` carrying its
:data:`PROTOCOL_VERSION` and the :func:`repro.exp.cache.
code_fingerprint` of its source tree; the coordinator refuses the
worker — naming exactly what mismatched — unless both equal its own
(:func:`validate_hello`).  A version skew means the frame semantics
differ; a fingerprint skew means the worker would simulate *different
physics* and silently poison a bit-identity-pinned sweep.  Over TCP
the coordinator additionally challenges the worker with a fresh
nonce: the hello must carry ``auth = HMAC-SHA256(secret,
"worker" | server_nonce | worker_nonce)`` — the shared secret itself
never crosses the wire — and the coordinator proves *its* knowledge of
the secret back in the ``welcome`` frame (role-separated digest over
the same nonces), so neither side decodes a single pickle byte from an
unauthenticated peer.  Local stdio workers skip the auth leg (both
ends of the pipe are the same trust domain) but not the
version/fingerprint check.

Values (points, results, shipped exceptions) are encoded JSON-natively
when — and only when — the JSON round trip reproduces the Python value
*exactly* (``json.loads(json.dumps(v)) == v``); anything else (tuples,
int-keyed dicts, NaNs, exception objects) rides as a base64 pickle
under the ``"p"`` tag.  That keeps the common sweep payloads (the
pure-dict points and dict results the drivers ship since PR 3) human-
readable on the wire while guaranteeing the distributed sweep is
bit-identical to the serial one at the Python-object level, not merely
JSON-equal.  Pickle is acceptable here because both ends of the pipe
are processes we spawned from the same source tree; a future
cross-trust-boundary transport would restrict itself to the JSON-native
subset.

``ff`` carries the coordinator's process-local fast-forward forced
mode (see :func:`repro.sim.fastforward.forced`) so a differential
equivalence check driven through a remote backend still pins its
baseline and fast-forward runs correctly inside the workers.
"""

from __future__ import annotations

import base64
import hashlib
import hmac
import importlib
import json
import os
import pickle
import secrets
import sys

#: Protocol version announced in the worker's hello frame (bumped to 2
#: when the hello grew the fingerprint/auth handshake fields).
PROTOCOL_VERSION = 2

#: Test hooks: override what a worker *claims* in its hello frame so
#: the refusal paths can be exercised from a healthy source tree (the
#: coordinator always validates against its real values).
FINGERPRINT_ENV = "REPRO_WORKER_FINGERPRINT"
VERSION_ENV = "REPRO_WORKER_PROTOCOL_VERSION"


class ProtocolError(RuntimeError):
    """Malformed frame or unresolvable trial-function reference."""


class HandshakeError(RuntimeError):
    """A worker failed the hello handshake (auth, version, or source
    fingerprint); the message names exactly what mismatched."""


class RemoteTrialError(RuntimeError):
    """A worker-side trial failure that could not be reconstructed as
    its original exception type (carries the remote traceback text)."""


# ----------------------------------------------------------------------
# Value encoding
# ----------------------------------------------------------------------
def encode_value(value) -> dict:
    """Encode ``value`` as ``{"j": ...}`` (exact-JSON) or ``{"p": b64}``."""
    try:
        if json.loads(json.dumps(value)) == value:
            return {"j": value}
    except (TypeError, ValueError, RecursionError):
        pass
    payload = pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)
    return {"p": base64.b64encode(payload).decode("ascii")}


def decode_value(obj: dict):
    """Inverse of :func:`encode_value`."""
    if "j" in obj:
        return obj["j"]
    if "p" in obj:
        return pickle.loads(base64.b64decode(obj["p"]))
    raise ProtocolError(f"undecodable value frame: {obj!r}")


# ----------------------------------------------------------------------
# Handshake
# ----------------------------------------------------------------------
def new_nonce() -> str:
    """A fresh random challenge nonce (hex)."""
    return secrets.token_hex(16)


def auth_digest(secret: str, role: str, server_nonce: str,
                peer_nonce: str) -> str:
    """HMAC-SHA256 proof of the shared secret, bound to both nonces.

    ``role`` separates the worker's proof from the coordinator's, so a
    reflected digest can never authenticate the other direction.
    """
    message = "\x1f".join((role, server_nonce, peer_nonce))
    return hmac.new(secret.encode("utf-8"), message.encode("utf-8"),
                    hashlib.sha256).hexdigest()


def challenge_frame(nonce: str) -> dict:
    """Coordinator's opening frame on a TCP connection."""
    return {"op": "challenge", "nonce": nonce,
            "version": PROTOCOL_VERSION}


def hello_frame(fingerprint: str, *, nonce: str | None = None,
                auth: str | None = None) -> dict:
    """A worker's hello.  The claimed version/fingerprint honor the
    test-hook environment overrides; ``nonce``/``auth`` ride along on
    authenticated (TCP) connections only."""
    version: object = os.environ.get(VERSION_ENV) or PROTOCOL_VERSION
    if isinstance(version, str):
        version = int(version) if version.isdigit() else version
    frame = {"op": "hello", "pid": os.getpid(), "version": version,
             "fingerprint": os.environ.get(FINGERPRINT_ENV) or fingerprint}
    if nonce is not None:
        frame["nonce"] = nonce
    if auth is not None:
        frame["auth"] = auth
    return frame


def _short(fingerprint: object) -> str:
    text = str(fingerprint)
    return text[:12] if len(text) > 12 else text


def validate_hello(frame: dict, *, fingerprint: str,
                   secret: str | None = None,
                   nonce: str | None = None) -> str | None:
    """Why ``frame`` must be refused, or ``None`` when it is acceptable.

    Checks, in order: shared-secret proof (when ``secret`` is set, i.e.
    on authenticated transports), protocol version, and source-tree
    fingerprint.  The returned reason names the mismatch and both
    sides' values — it is the operator's only clue that a host in the
    fleet runs stale code.  Nothing in the hello is ever
    pickle-decoded: an unauthenticated peer only reaches plain-JSON
    string comparisons.
    """
    if secret is not None:
        expected = auth_digest(secret, "worker", nonce or "",
                               str(frame.get("nonce", "")))
        presented = frame.get("auth")
        if (not isinstance(presented, str)
                or not hmac.compare_digest(presented, expected)):
            return ("authentication failed: hello carries a bad or "
                    "missing shared-secret digest (wrong "
                    "REPRO_FLEET_SECRET?)")
    version = frame.get("version")
    if version != PROTOCOL_VERSION:
        return (f"protocol version mismatch: worker speaks {version!r}, "
                f"coordinator requires {PROTOCOL_VERSION}")
    presented_fp = frame.get("fingerprint")
    if presented_fp != fingerprint:
        return (f"code fingerprint mismatch: worker runs "
                f"{_short(presented_fp)}, coordinator runs "
                f"{_short(fingerprint)} (stale or divergent source tree)")
    return None


# ----------------------------------------------------------------------
# Trial-function addressing
# ----------------------------------------------------------------------
def fn_ref(fn) -> str | None:
    """``"module:qualname"`` reference of a module-level callable.

    Returns ``None`` when ``fn`` is not addressable across processes —
    a lambda, a nested function, a bound method, or anything whose
    reference does not resolve back to the very same object.
    """
    module = getattr(fn, "__module__", None)
    qualname = getattr(fn, "__qualname__", None)
    if not module or not qualname or "." in qualname or "<" in qualname:
        return None
    if module in ("__main__", "__mp_main__"):
        # Resolvable here, but another process's __main__ is a
        # different module entirely — not addressable, not cacheable.
        return None
    ref = f"{module}:{qualname}"
    try:
        if resolve_fn(ref) is not fn:
            return None
    except Exception:
        return None
    return ref


def resolve_fn(ref: str):
    """Import and return the callable a :func:`fn_ref` string names."""
    module_name, sep, qualname = ref.partition(":")
    if not sep or not module_name or not qualname:
        raise ProtocolError(f"bad trial-function reference {ref!r}")
    module = sys.modules.get(module_name)
    if module is None:
        module = importlib.import_module(module_name)
    try:
        return getattr(module, qualname)
    except AttributeError:
        raise ProtocolError(
            f"module {module_name!r} has no attribute {qualname!r}") from None


# ----------------------------------------------------------------------
# Frames
# ----------------------------------------------------------------------
def dump_frame(frame: dict) -> str:
    """One wire line (terminated) for ``frame``."""
    return json.dumps(frame, separators=(",", ":")) + "\n"


def parse_frame(line: str) -> dict | None:
    """Parse one wire line; ``None`` for blank/non-frame lines (stray
    output that escaped to the protocol stream is noise, not a crash)."""
    line = line.strip()
    if not line or not line.startswith("{"):
        return None
    try:
        frame = json.loads(line)
    except json.JSONDecodeError:
        return None
    return frame if isinstance(frame, dict) else None


def task_frame(task_id: str, ref: str, point, seed, ff: str | None) -> dict:
    return {"op": "run", "id": task_id, "fn": ref,
            "point": encode_value(point), "seed": seed, "ff": ff}


def error_frame(task_id: str, exc: BaseException, traceback_text: str) -> dict:
    """Ship a trial failure; the exception object rides along when it
    pickles, so the coordinator re-raises the original type."""
    frame = {"id": task_id, "ok": False, "exc": repr(exc),
             "traceback": traceback_text}
    try:
        frame["error"] = encode_value(exc)
    except Exception:  # unpicklable exception: textual fallback only
        pass
    return frame


def raise_remote(frame: dict) -> None:
    """Re-raise the failure an error frame describes.

    The original exception is raised when it was shippable; otherwise a
    :class:`RemoteTrialError` carrying the remote repr + traceback.
    The remote traceback is chained as the cause either way, so the
    worker-side context is never lost.
    """
    remote = RemoteTrialError(
        f"trial failed in worker: {frame.get('exc', '?')}\n"
        f"{frame.get('traceback', '')}".rstrip())
    encoded = frame.get("error")
    if encoded is not None:
        try:
            exc = decode_value(encoded)
        except Exception:
            exc = None
        if isinstance(exc, BaseException):
            raise exc from remote
    raise remote
