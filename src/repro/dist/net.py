"""TCP transport for the shards fleet (cross-machine workers).

The stdio shards backend spawns its workers; this module lets workers
*dial in* instead: the coordinator opens a :class:`FleetServer` on a
TCP port, and every ``python -m repro worker --connect HOST:PORT``
that passes the handshake becomes a :class:`RemoteShard` — the same
NDJSON frame protocol, the same coordinator loop, the same
crash-requeue/timeout/retry semantics as a locally spawned worker.
The only transport-visible differences: a timeout kill drops the
connection instead of signaling a child process, and EOF means "the
socket closed" rather than "the child exited".

Connection lifecycle (server side)::

    accept -> challenge {nonce} -> read hello -> validate
       ok     -> welcome {auth}; RemoteShard joins the fleet
       refuse -> refused {error naming the mismatch}; close

The handshake (see :mod:`repro.dist.protocol`) authenticates **both**
directions with HMAC proofs of a shared secret over fresh nonces —
the secret never crosses the wire — and pins the worker's protocol
version and source-tree fingerprint to the coordinator's.  Until a
peer is authenticated, nothing it sends is pickle-decoded: the
handshake frames are plain JSON, and a connection is dropped at the
first invalid frame.

A ``status`` client (``repro fleet status``) speaks the same
challenge/auth opening with a ``status`` role digest and receives one
JSON document describing the fleet (workers, versions, fingerprints,
in-flight depth) before the connection closes.
"""

from __future__ import annotations

import queue
import socket
import threading
import time

from repro.dist.protocol import (
    HandshakeError,
    PROTOCOL_VERSION,
    auth_digest,
    challenge_frame,
    dump_frame,
    hello_frame,
    new_nonce,
    parse_frame,
    validate_hello,
)
from repro.obs.metrics import REGISTRY as _METRICS

_CONNECTS = _METRICS.counter(
    "repro_fleet_connects_total",
    "Remote workers that completed the handshake and joined")
_DISCONNECTS = _METRICS.counter(
    "repro_fleet_disconnects_total",
    "Remote worker connections that ended (EOF, kill, or drop)")
_REFUSALS = _METRICS.counter(
    "repro_fleet_refusals_total",
    "Handshakes refused, by mismatch class")
_FRAMES_RX = _METRICS.counter(
    "repro_fleet_frames_received_total",
    "Frames read from remote workers")
_FRAMES_TX = _METRICS.counter(
    "repro_fleet_frames_sent_total", "Frames written to remote workers")
_BYTES_RX = _METRICS.counter(
    "repro_fleet_bytes_received_total",
    "Protocol bytes read from remote workers")
_BYTES_TX = _METRICS.counter(
    "repro_fleet_bytes_sent_total",
    "Protocol bytes written to remote workers")


def _refusal_class(reason: str) -> str:
    """Bucket a refusal diagnostic into a low-cardinality label."""
    text = reason.lower()
    if "auth" in text or "secret" in text:
        return "auth"
    if "version" in text:
        return "version"
    if "fingerprint" in text:
        return "fingerprint"
    return "protocol"

#: Seconds an accepted connection gets to complete the handshake.
HANDSHAKE_TIMEOUT = 10.0

#: Delay between connection attempts while a worker waits for its
#: coordinator to come up (or back up, in ``--reconnect`` mode).
RETRY_DELAY = 0.5


def parse_hostport(text: str, *, default_host: str = "127.0.0.1"
                   ) -> tuple[str, int]:
    """``"host:port"`` / ``":port"`` / ``"port"`` -> ``(host, port)``."""
    text = text.strip()
    host, sep, port_text = text.rpartition(":")
    if not sep:
        host, port_text = "", text
    host = host or default_host
    try:
        port = int(port_text)
    except ValueError:
        raise ValueError(
            f"bad address {text!r}: expected HOST:PORT or PORT") from None
    if not 0 <= port < 65536:
        raise ValueError(f"bad port {port} in {text!r}")
    return host, port


def _frame_files(sock: socket.socket):
    """(reader, writer) text files over ``sock`` for NDJSON frames.

    The writer is line-buffered to match the stdio transport's
    protocol stream: every frame ends in a newline, so each write
    flushes — the worker's task loop counts on that."""
    rfile = sock.makefile("r", encoding="utf-8", newline="\n")
    wfile = sock.makefile("w", encoding="utf-8", newline="\n")
    # makefile() silently ignores buffering=1 for sockets, so ask the
    # text layer directly: flush whenever a write contains a newline.
    wfile.reconfigure(line_buffering=True)
    return rfile, wfile


class RemoteShard:
    """A dialed-in worker: the fleet-side handle of one TCP connection.

    Implements the same surface the coordinator uses on a local
    ``_Shard`` (``send``/``send_many``/``kill``/``shutdown``/``alive``/
    ``depth``/``ready``), so :meth:`repro.dist.shards.ShardsBackend.run`
    treats both identically.  Born ``ready``: the server validated the
    hello before constructing it.
    """

    remote = True

    def __init__(self, sock: socket.socket, rfile, wfile,
                 addr: tuple, hello: dict, outq: queue.Queue) -> None:
        self._sock = sock
        self._rfile = rfile
        self._wfile = wfile
        self._dead = False
        self._lock = threading.Lock()
        self.addr = f"{addr[0]}:{addr[1]}"
        self.pid = hello.get("pid")
        self.version = hello.get("version")
        self.fingerprint = hello.get("fingerprint")
        self.id = f"tcp:{self.addr}:pid{self.pid}"
        self.depth = 0
        self.ready = True
        self.trials_done = 0
        self._reader = threading.Thread(
            target=self._read_loop, args=(outq,), daemon=True,
            name=f"repro-{self.id}-reader")
        self._reader.start()

    def _read_loop(self, outq: queue.Queue) -> None:
        try:
            for line in self._rfile:
                _BYTES_RX.inc(len(line))
                frame = parse_frame(line)
                if frame is not None:
                    _FRAMES_RX.inc()
                    outq.put(("frame", self, frame))
        except (OSError, ValueError):  # pragma: no cover - teardown race
            pass
        self._dead = True
        _DISCONNECTS.inc()
        outq.put(("eof", self, None))

    @property
    def alive(self) -> bool:
        return not self._dead

    def send(self, frame: dict) -> bool:
        return self.send_many([frame])

    def send_many(self, frames: list[dict]) -> bool:
        try:
            block = "".join(map(dump_frame, frames))
            with self._lock:
                self._wfile.write(block)
                self._wfile.flush()
            _FRAMES_TX.inc(len(frames))
            _BYTES_TX.inc(len(block))
            return True
        except (OSError, ValueError):
            return False

    def kill(self) -> None:
        """Drop the connection (the TCP analogue of SIGKILL): the
        worker sees EOF and the coordinator's reader thread reports
        ours."""
        self._dead = True
        try:
            self._sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        try:
            self._sock.close()
        except OSError:  # pragma: no cover - already closed
            pass

    def shutdown(self) -> None:
        if not self._dead:
            self.send({"op": "shutdown"})
        self.kill()

    def death_detail(self) -> str:
        return "connection lost"


class FleetServer:
    """The coordinator's TCP listener: accepts, authenticates, and
    registers remote workers into a shared fleet list.

    ``fleet`` is the coordinator's live shard list (appended from the
    handshake threads; CPython list ops keep this safe) and ``outq``
    its event queue — a ``("join", shard, None)`` event wakes a
    coordinator blocked waiting for capacity.  ``on_event(kind,
    detail)`` (kinds: ``listening``/``joined``/``refused``) feeds the
    ``repro fleet listen`` console.
    """

    def __init__(self, host: str, port: int, *, secret: str,
                 fingerprint: str, fleet: list, outq: queue.Queue,
                 on_event=None, metrics_source=None) -> None:
        if not secret:
            raise ValueError(
                "a fleet listener requires a shared secret "
                "(set REPRO_FLEET_SECRET)")
        self._secret = secret
        self._fingerprint = fingerprint
        self._fleet = fleet
        self._outq = outq
        self._on_event = on_event or (lambda kind, detail: None)
        #: Optional ``() -> dict`` snapshot of the coordinator's
        #: metrics registry, embedded in :meth:`status_doc` so
        #: ``repro fleet status --json`` aggregates telemetry too.
        self._metrics_source = metrics_source
        self._closed = False
        self.refused_count = 0
        self.last_refusal: str | None = None
        self._sock = socket.create_server((host, port), backlog=16,
                                          reuse_port=False)
        self.host, self.port = self._sock.getsockname()[:2]
        self._acceptor = threading.Thread(
            target=self._accept_loop, daemon=True,
            name=f"repro-fleet-accept:{self.port}")
        self._acceptor.start()
        self._on_event("listening", f"{self.host}:{self.port}")

    @property
    def address(self) -> str:
        return f"{self.host}:{self.port}"

    # -- accept + handshake ---------------------------------------------
    def _accept_loop(self) -> None:
        while not self._closed:
            try:
                conn, addr = self._sock.accept()
            except OSError:
                return  # listener closed
            # One thread per handshake: a slow or stalled dialer must
            # not block other workers from joining.
            threading.Thread(target=self._handshake, args=(conn, addr),
                             daemon=True,
                             name=f"repro-fleet-handshake:{addr}").start()

    def _handshake(self, conn: socket.socket, addr) -> None:
        try:
            conn.settimeout(HANDSHAKE_TIMEOUT)
            rfile, wfile = _frame_files(conn)
            nonce = new_nonce()
            wfile.write(dump_frame(challenge_frame(nonce)))
            wfile.flush()
            frame = parse_frame(rfile.readline())
            if frame is None:
                return self._refuse(conn, wfile, addr,
                                    "no hello frame received")
            op = frame.get("op")
            if op == "status":
                return self._serve_status(conn, wfile, addr, frame, nonce)
            if op != "hello":
                return self._refuse(conn, wfile, addr,
                                    f"expected a hello frame, got {op!r}")
            reason = validate_hello(frame, fingerprint=self._fingerprint,
                                    secret=self._secret, nonce=nonce)
            if reason is not None:
                return self._refuse(conn, wfile, addr, reason)
            wfile.write(dump_frame({
                "op": "welcome",
                "auth": auth_digest(self._secret, "coordinator", nonce,
                                    str(frame.get("nonce", "")))}))
            wfile.flush()
            conn.settimeout(None)
            shard = RemoteShard(conn, rfile, wfile, addr, frame,
                                self._outq)
            _CONNECTS.inc()
            self._fleet.append(shard)
            self._outq.put(("join", shard, None))
            self._on_event("joined",
                           f"{shard.id} (version {shard.version}, "
                           f"fingerprint {str(shard.fingerprint)[:12]})")
        except OSError:  # pragma: no cover - dialer vanished mid-shake
            try:
                conn.close()
            except OSError:
                pass

    def _refuse(self, conn, wfile, addr, reason: str) -> None:
        self.refused_count += 1
        self.last_refusal = reason
        _REFUSALS.inc(reason=_refusal_class(reason))
        self._on_event("refused", f"{addr[0]}:{addr[1]}: {reason}")
        try:
            wfile.write(dump_frame({"op": "refused", "error": reason}))
            wfile.flush()
        except OSError:  # pragma: no cover
            pass
        try:
            conn.close()
        except OSError:  # pragma: no cover
            pass

    def _serve_status(self, conn, wfile, addr, frame: dict,
                      nonce: str) -> None:
        expected = auth_digest(self._secret, "status", nonce,
                               str(frame.get("nonce", "")))
        import hmac as _hmac

        presented = frame.get("auth")
        if (not isinstance(presented, str)
                or not _hmac.compare_digest(presented, expected)):
            return self._refuse(conn, wfile, addr,
                                "status query authentication failed")
        wfile.write(dump_frame({"op": "status", **self.status_doc()}))
        wfile.flush()
        try:
            conn.close()
        except OSError:  # pragma: no cover
            pass

    # -- introspection ---------------------------------------------------
    def status_doc(self) -> dict:
        """The fleet as one JSON document (served to ``fleet status``)."""
        workers = []
        for shard in list(self._fleet):
            workers.append({
                "id": shard.id,
                "transport": "tcp" if getattr(shard, "remote", False)
                             else "stdio",
                "addr": getattr(shard, "addr", None),
                "version": getattr(shard, "version", None),
                "fingerprint": getattr(shard, "fingerprint", None),
                "ready": shard.ready,
                "alive": shard.alive,
                "in_flight": shard.depth,
                "trials_done": getattr(shard, "trials_done", 0),
            })
        doc = {
            "listen": self.address,
            "protocol_version": PROTOCOL_VERSION,
            "fingerprint": self._fingerprint,
            "workers": workers,
            "refused_count": self.refused_count,
            "last_refusal": self.last_refusal,
        }
        if self._metrics_source is not None:
            try:
                doc["metrics"] = self._metrics_source()
            except Exception:  # noqa: BLE001 - status must still serve
                pass
        return doc

    def close(self) -> None:
        self._closed = True
        try:
            self._sock.close()
        except OSError:  # pragma: no cover
            pass


# ----------------------------------------------------------------------
# Client side (worker + status CLI)
# ----------------------------------------------------------------------
def _open_and_challenge(host: str, port: int, timeout: float):
    """Dial and read the server's challenge; returns
    ``(sock, rfile, wfile, nonce)``."""
    sock = socket.create_connection((host, port), timeout=timeout)
    sock.settimeout(HANDSHAKE_TIMEOUT)
    rfile, wfile = _frame_files(sock)
    frame = parse_frame(rfile.readline())
    if frame is None or frame.get("op") != "challenge":
        sock.close()
        raise HandshakeError(
            f"{host}:{port} did not open with a challenge frame "
            "(is that really a repro fleet coordinator?)")
    return sock, rfile, wfile, str(frame.get("nonce", ""))


def connect_worker(host: str, port: int, *, secret: str,
                   fingerprint: str, retry_for: float | None = 60.0):
    """Dial a coordinator and complete the worker handshake.

    Connection-level failures (nothing listening yet, network blips)
    retry every :data:`RETRY_DELAY` seconds for ``retry_for`` seconds
    (``None`` = forever) — workers are typically launched before or
    independently of the sweep that will feed them.  A *refusal* is
    permanent (wrong secret, skewed source tree) and raises
    :class:`~repro.dist.protocol.HandshakeError` immediately with the
    coordinator's diagnostic.

    Returns ``(sock, rfile, wfile)`` with the handshake complete and
    the coordinator's own HMAC proof verified — only then may task
    frames (which carry pickles) be decoded.
    """
    deadline = (None if retry_for is None
                else time.monotonic() + retry_for)
    while True:
        try:
            sock, rfile, wfile, nonce = _open_and_challenge(
                host, port, timeout=HANDSHAKE_TIMEOUT)
            break
        except (OSError, HandshakeError):
            if deadline is not None and time.monotonic() >= deadline:
                raise
            time.sleep(RETRY_DELAY)
    worker_nonce = new_nonce()
    auth = auth_digest(secret, "worker", nonce, worker_nonce)
    wfile.write(dump_frame(hello_frame(fingerprint, nonce=worker_nonce,
                                       auth=auth)))
    wfile.flush()
    reply = parse_frame(rfile.readline())
    if reply is None:
        sock.close()
        raise HandshakeError(
            f"coordinator {host}:{port} closed the connection during "
            "the handshake")
    if reply.get("op") == "refused":
        sock.close()
        raise HandshakeError(
            f"refused by coordinator {host}:{port}: "
            f"{reply.get('error', 'no reason given')}")
    import hmac as _hmac

    expected = auth_digest(secret, "coordinator", nonce, worker_nonce)
    presented = reply.get("auth")
    if (reply.get("op") != "welcome" or not isinstance(presented, str)
            or not _hmac.compare_digest(presented, expected)):
        sock.close()
        raise HandshakeError(
            f"coordinator {host}:{port} failed mutual authentication "
            "(bad welcome proof) — refusing to accept tasks from it")
    sock.settimeout(None)
    return sock, rfile, wfile


def query_status(host: str, port: int, *, secret: str,
                 timeout: float = HANDSHAKE_TIMEOUT) -> dict:
    """Authenticate as a status client and fetch the fleet document."""
    sock, rfile, wfile, nonce = _open_and_challenge(host, port,
                                                    timeout=timeout)
    try:
        client_nonce = new_nonce()
        wfile.write(dump_frame({
            "op": "status", "nonce": client_nonce,
            "auth": auth_digest(secret, "status", nonce, client_nonce)}))
        wfile.flush()
        reply = parse_frame(rfile.readline())
    finally:
        sock.close()
    if reply is None:
        raise HandshakeError(
            f"coordinator {host}:{port} closed the connection without "
            "answering the status query")
    if reply.get("op") == "refused":
        raise HandshakeError(
            f"refused by coordinator {host}:{port}: "
            f"{reply.get('error', 'no reason given')}")
    if reply.get("op") != "status":
        raise HandshakeError(
            f"unexpected {reply.get('op')!r} frame in place of the "
            "status document")
    return {k: v for k, v in reply.items() if k != "op"}
