"""Best-Offset hardware prefetching (Michaud, HPCA 2016).

The prefetcher learns the best constant line offset D: on each L2 miss
(or prefetched hit) to line X it tests one candidate offset d by
checking whether X - d is in the recent-requests (RR) table -- if so,
a prefetch of X + d back then would have been timely, so d scores a
point.  After a full round over the candidate list, the best-scoring
offset becomes the active prefetch offset.
"""

from __future__ import annotations

#: Default candidate offsets (a subset of the paper's list).
DEFAULT_OFFSETS = (1, 2, 3, 4, 5, 6, 8, 9, 10, 12, 15, 16)

BAD_SCORE = 1
MAX_SCORE = 31
MAX_ROUNDS = 100


class BestOffsetPrefetcher:
    """Offset prefetcher with RR-table-based offset learning."""

    def __init__(self, offsets: tuple[int, ...] = DEFAULT_OFFSETS,
                 rr_size: int = 64, line_bytes: int = 64) -> None:
        if not offsets:
            raise ValueError("need at least one candidate offset")
        self.offsets = offsets
        self.rr_size = rr_size
        self.line_bytes = line_bytes
        self.best_offset: int = offsets[0]
        self.prefetch_enabled = True
        self._scores = {d: 0 for d in offsets}
        self._test_idx = 0
        self._round = 0
        self._rr: dict[int, None] = {}
        self.prefetches_issued = 0

    # ------------------------------------------------------------------
    def _rr_insert(self, line: int) -> None:
        if line in self._rr:
            return
        if len(self._rr) >= self.rr_size:
            self._rr.pop(next(iter(self._rr)))
        self._rr[line] = None

    def record_fill(self, addr: int) -> None:
        """A demand fill completed: insert the *base* line (addr minus
        the current prefetch offset) into the RR table."""
        line = addr // self.line_bytes
        self._rr_insert(line - self.best_offset)

    def on_access(self, addr: int) -> int | None:
        """Learn from one trigger access and maybe return an address to
        prefetch (``None`` when prefetching is off or out of phase)."""
        line = addr // self.line_bytes
        candidate = self.offsets[self._test_idx]
        if (line - candidate) in self._rr:
            self._scores[candidate] += 1
            if self._scores[candidate] >= MAX_SCORE:
                self._finish_round()
        self._test_idx += 1
        if self._test_idx >= len(self.offsets):
            self._test_idx = 0
            self._round += 1
            if self._round >= MAX_ROUNDS:
                self._finish_round()
        self._rr_insert(line)
        if not self.prefetch_enabled:
            return None
        self.prefetches_issued += 1
        return (line + self.best_offset) * self.line_bytes

    def _finish_round(self) -> None:
        best = max(self._scores, key=self._scores.__getitem__)
        best_score = self._scores[best]
        self.best_offset = best
        self.prefetch_enabled = best_score > BAD_SCORE
        self._scores = {d: 0 for d in self.offsets}
        self._test_idx = 0
        self._round = 0
