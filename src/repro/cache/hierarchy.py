"""A multi-level cache hierarchy front-end for trace agents.

The attacks themselves flush their lines (clflush) so they always reach
DRAM; what the cache hierarchy changes (paper Section 10.3) is (1) the
constant on-chip latency an attacker's request pays, (2) how much of a
*victim's* traffic is filtered before reaching DRAM (fewer preventive
actions), and (3) prefetcher-injected extra DRAM traffic (more noise).
This module provides exactly those three effects.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cache.cache import Cache
from repro.cache.prefetcher import BestOffsetPrefetcher
from repro.sim.engine import NS


@dataclass(frozen=True)
class LevelSpec:
    """Geometry of one cache level."""

    size_bytes: int
    ways: int
    latency_ps: int


@dataclass(frozen=True)
class HierarchyConfig:
    """Cache hierarchy configuration.

    The defaults model the paper's base system (32 KB L1 + 4 MB LLC);
    :meth:`large` models the Section 10.3 system (adds a 256 KB L2 and
    a 6 MB LLC with Best-Offset prefetching at L2).
    """

    levels: tuple[LevelSpec, ...] = (
        LevelSpec(32 * 1024, 8, 2 * NS),
        LevelSpec(4 * 1024 * 1024, 16, 10 * NS),
    )
    line_bytes: int = 64
    prefetch: bool = False

    @classmethod
    def large(cls) -> "HierarchyConfig":
        return cls(levels=(
            LevelSpec(32 * 1024, 8, 2 * NS),
            LevelSpec(256 * 1024, 8, 5 * NS),
            LevelSpec(6 * 1024 * 1024, 16, 12 * NS),
        ), prefetch=True)

    @property
    def total_lookup_latency(self) -> int:
        """Latency of missing every level (the attacker's clflush path)."""
        return sum(level.latency_ps for level in self.levels)


@dataclass
class AccessOutcome:
    """Result of sending one access through the hierarchy."""

    hit_level: int | None  #: 0-based level index, None = DRAM
    latency_ps: int  #: on-chip latency spent before DRAM (if any)
    dram_addresses: list[int] = field(default_factory=list)


class CacheHierarchy:
    """Inclusive multi-level hierarchy with optional L2 Best-Offset
    prefetching; misses return the DRAM addresses to fetch."""

    def __init__(self, config: HierarchyConfig | None = None) -> None:
        self.config = config if config is not None else HierarchyConfig()
        self.caches = [
            Cache(level.size_bytes, level.ways, self.config.line_bytes,
                  level.latency_ps, name=f"L{i + 1}")
            for i, level in enumerate(self.config.levels)
        ]
        prefetch_level = min(1, len(self.caches) - 1)
        self._prefetch_cache = self.caches[prefetch_level]
        self.prefetcher = (
            BestOffsetPrefetcher(line_bytes=self.config.line_bytes)
            if self.config.prefetch else None)

    # ------------------------------------------------------------------
    def access(self, addr: int) -> AccessOutcome:
        """Look up ``addr``; on a full miss the outcome lists the DRAM
        fetches to perform (demand line plus any prefetch)."""
        latency = 0
        for idx, cache in enumerate(self.caches):
            latency += cache.latency_ps
            if cache.lookup(addr):
                self._fill_above(addr, idx)
                return AccessOutcome(hit_level=idx, latency_ps=latency)
        fetches = [addr]
        if self.prefetcher is not None:
            prefetch_addr = self.prefetcher.on_access(addr)
            if prefetch_addr is not None and prefetch_addr != addr \
                    and not self._prefetch_cache.contains(prefetch_addr):
                fetches.append(prefetch_addr)
        return AccessOutcome(hit_level=None, latency_ps=latency,
                             dram_addresses=fetches)

    def fill(self, addr: int, prefetch: bool = False) -> None:
        """Install a line returned from DRAM into the hierarchy."""
        if prefetch:
            self._prefetch_cache.fill(addr)
        else:
            for cache in self.caches:
                cache.fill(addr)
            if self.prefetcher is not None:
                self.prefetcher.record_fill(addr)

    def _fill_above(self, addr: int, hit_level: int) -> None:
        for cache in self.caches[:hit_level]:
            cache.fill(addr)

    def clflush(self, addr: int) -> None:
        """Flush the line from every level (the attacker primitive)."""
        for cache in self.caches:
            cache.invalidate(addr)

    # ------------------------------------------------------------------
    @property
    def miss_latency(self) -> int:
        return self.config.total_lookup_latency

    def stats(self) -> dict:
        return {cache.name: {"hits": cache.hits, "misses": cache.misses}
                for cache in self.caches}
