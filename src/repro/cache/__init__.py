"""Cache hierarchy substrate for the Section 10.3 sensitivity study."""

from repro.cache.cache import Cache
from repro.cache.hierarchy import CacheHierarchy, HierarchyConfig
from repro.cache.prefetcher import BestOffsetPrefetcher

__all__ = ["Cache", "CacheHierarchy", "HierarchyConfig",
           "BestOffsetPrefetcher"]
