"""A set-associative cache with LRU replacement and clflush support."""

from __future__ import annotations

from collections import OrderedDict


class Cache:
    """One cache level.

    Lines are tracked as an ordered set per cache set; the eldest entry
    is the LRU victim.  ``lookup`` moves hits to MRU; ``fill`` inserts
    and returns the evicted line address (or ``None``).
    """

    def __init__(self, size_bytes: int, ways: int, line_bytes: int = 64,
                 latency_ps: int = 0, name: str = "cache") -> None:
        if size_bytes <= 0 or ways <= 0 or line_bytes <= 0:
            raise ValueError("cache geometry must be positive")
        n_lines = size_bytes // line_bytes
        if n_lines % ways:
            raise ValueError("size/line count must divide by ways")
        self.n_sets = n_lines // ways
        if self.n_sets < 1:
            raise ValueError("cache must have at least one set")
        self.ways = ways
        self.line_bytes = line_bytes
        self.latency_ps = latency_ps
        self.name = name
        self._sets: list[OrderedDict[int, None]] = [
            OrderedDict() for _ in range(self.n_sets)]
        self.hits = 0
        self.misses = 0

    # ------------------------------------------------------------------
    def _index(self, addr: int) -> tuple[int, int]:
        line = addr // self.line_bytes
        return line % self.n_sets, line

    def lookup(self, addr: int) -> bool:
        """Probe the cache; hits refresh LRU position."""
        set_idx, line = self._index(addr)
        entries = self._sets[set_idx]
        if line in entries:
            entries.move_to_end(line)
            self.hits += 1
            return True
        self.misses += 1
        return False

    def fill(self, addr: int) -> int | None:
        """Insert a line; returns the evicted line's address, if any."""
        set_idx, line = self._index(addr)
        entries = self._sets[set_idx]
        if line in entries:
            entries.move_to_end(line)
            return None
        victim = None
        if len(entries) >= self.ways:
            victim_line, _ = entries.popitem(last=False)
            victim = victim_line * self.line_bytes
        entries[line] = None
        return victim

    def invalidate(self, addr: int) -> bool:
        """clflush: drop the line; returns whether it was present."""
        set_idx, line = self._index(addr)
        return self._sets[set_idx].pop(line, "absent") != "absent"

    def contains(self, addr: int) -> bool:
        """Presence check without touching LRU state."""
        set_idx, line = self._index(addr)
        return line in self._sets[set_idx]

    @property
    def occupancy(self) -> int:
        return sum(len(s) for s in self._sets)
